//! The server proper: a `TcpListener` accept loop, per-connection
//! handler threads, the batcher thread, and the three endpoints.
//!
//! * `POST /v1/tag` — newline-delimited sentences in, tab-separated
//!   `token\tTAG` lines out (sentences separated by a blank line).
//! * `GET /healthz` — liveness.
//! * `GET /metrics` — the global [`graphner_obs`] registry as JSONL:
//!   latency quantiles, throughput, queue depth, the batch-size
//!   histogram, and the novel-trigram fallback rate.
//!
//! Backpressure end to end: handlers shape-validate and `try_push`
//! into the bounded queue — a full queue answers 429 + `Retry-After`
//! immediately, an expired deadline answers 503 — so every accepted
//! request is *answered*, never silently dropped.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use graphner_core::ServeConfig;
use graphner_obs::{attr, span, Counter, Gauge, Histogram, Registry, Stopwatch};
use graphner_text::{tokenize, validate_sentences, BioTag, Sentence, TagError, Tagger};

use crate::batcher::{run_batcher, Deadline, ResponseSlot, TagRequest, TagResponse};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::queue::{BoundedQueue, PushError};

/// How long a connection read blocks before the handler re-checks the
/// shutdown flag — bounds both shutdown latency and how long an idle
/// keep-alive connection pins its thread.
const CONNECTION_POLL: Duration = Duration::from_millis(500);

/// Cached handles to every serve-path metric, so the hot path never
/// takes the registry's name-lookup lock.
pub struct ServeMetrics {
    /// `serve.requests`: tag requests accepted into the queue.
    pub requests: Arc<Counter>,
    /// `serve.rejected`: requests answered 429 (queue full).
    pub rejected: Arc<Counter>,
    /// `serve.expired`: requests answered 503 (deadline passed).
    pub expired: Arc<Counter>,
    /// `serve.bad_requests`: requests answered 400.
    pub bad_requests: Arc<Counter>,
    /// `serve.tokens`: tokens carried by accepted requests — the
    /// denominator of the fallback rate.
    pub tokens: Arc<Counter>,
    /// `serve.latency_seconds`: accept-to-response time of 200s.
    pub latency: Arc<Histogram>,
    /// `serve.queue_depth`: depth observed at each successful push.
    pub queue_depth: Arc<Gauge>,
}

impl ServeMetrics {
    /// Resolve every handle against the global registry.
    pub fn new() -> ServeMetrics {
        let registry = Registry::global();
        ServeMetrics {
            requests: registry.counter("serve.requests"),
            rejected: registry.counter("serve.rejected"),
            expired: registry.counter("serve.expired"),
            bad_requests: registry.counter("serve.bad_requests"),
            tokens: registry.counter("serve.tokens"),
            latency: registry.histogram("serve.latency_seconds"),
            queue_depth: registry.gauge("serve.queue_depth"),
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

/// Render one request's tags in the wire format: `token\tTAG` per
/// token, a blank line after each sentence. Shared by the server and
/// the determinism suite, so "server output equals offline
/// `tag_batch`" is a comparison of identical renderings.
pub fn render_tags(sentences: &[Sentence], tags: &[Vec<BioTag>]) -> String {
    let mut out = String::new();
    for (sentence, sentence_tags) in sentences.iter().zip(tags) {
        for (token, tag) in sentence.tokens.iter().zip(sentence_tags) {
            out.push_str(token);
            out.push('\t');
            out.push_str(tag.as_str());
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Parse a `POST /v1/tag` body into sentences: UTF-8, one sentence per
/// line, tokenized with the workspace tokenizer. One trailing newline
/// is the line terminator of the last sentence, not an empty request.
pub fn parse_tag_body(body: &[u8]) -> Result<Vec<Sentence>, &'static str> {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return Err("body is not valid UTF-8"),
    };
    let text = text.strip_suffix('\n').unwrap_or(text);
    if text.is_empty() {
        return Err("empty body: expected newline-delimited sentences");
    }
    Ok(text
        .split('\n')
        .enumerate()
        .map(|(i, line)| {
            Sentence::unlabelled(format!("q{i}"), tokenize(line.trim_end_matches('\r')))
        })
        .collect())
}

/// Everything a connection handler needs, shared across threads.
struct Ctx {
    queue: BoundedQueue<TagRequest>,
    cfg: ServeConfig,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
    uptime: Stopwatch,
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    acceptor: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the queue, and join every thread.
    /// In-flight requests are answered before the batcher exits.
    pub fn shutdown(mut self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.ctx.queue.close();
        // wake the acceptor with a throwaway connection; if connecting
        // fails the accept loop is already gone
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        let handles = {
            let mut connections = match self.connections.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::take(&mut *connections)
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `tagger` under
/// the validated serving knobs in `cfg`.
pub fn start<T: Tagger + Send + Sync + 'static>(
    tagger: T,
    cfg: ServeConfig,
    addr: &str,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let ctx = Arc::new(Ctx {
        queue: BoundedQueue::new(cfg.queue_capacity),
        cfg,
        metrics: ServeMetrics::new(),
        shutdown: AtomicBool::new(false),
        uptime: Stopwatch::start(),
    });
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let batcher_ctx = Arc::clone(&ctx);
    let batcher = std::thread::spawn(move || {
        run_batcher(&batcher_ctx.queue, &tagger, &batcher_ctx.cfg);
    });

    let acceptor_ctx = Arc::clone(&ctx);
    let acceptor_connections = Arc::clone(&connections);
    let acceptor = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if acceptor_ctx.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let Ok(stream) = stream else { continue };
            let conn_ctx = Arc::clone(&acceptor_ctx);
            let handle = std::thread::spawn(move || handle_connection(stream, &conn_ctx));
            let mut handles = match acceptor_connections.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            // joined handles accumulate until shutdown; a long-lived
            // server sheds the finished ones here
            handles.retain(|h| !h.is_finished());
            handles.push(handle);
        }
    });

    Ok(ServerHandle {
        addr: local_addr,
        ctx,
        acceptor: Some(acceptor),
        batcher: Some(batcher),
        connections,
    })
}

/// Serve one connection until the peer closes, an error, or shutdown.
fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    if stream.set_read_timeout(Some(CONNECTION_POLL)).is_err() {
        return;
    }
    // single-write responses + no Nagle: without this, the
    // request/response ping-pong stalls on 40 ms delayed-ACK timers
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_request(&mut reader) {
            Ok(request) => {
                let close = request.wants_close();
                if respond(&mut writer, &request, ctx).is_err() || close {
                    return;
                }
            }
            Err(HttpError::Eof) => return,
            Err(HttpError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // idle keep-alive poll: re-check the shutdown flag
                continue;
            }
            Err(HttpError::Io(_)) => return,
            Err(HttpError::BodyTooLarge(_)) => {
                let _ = write_response(&mut writer, 413, &[], b"request body too large\n");
                return;
            }
            Err(HttpError::Malformed(what)) => {
                let _ = write_response(
                    &mut writer,
                    400,
                    &[],
                    format!("malformed request: {what}\n").as_bytes(),
                );
                return;
            }
        }
    }
}

/// Route one parsed request and write the response.
fn respond(writer: &mut TcpStream, request: &Request, ctx: &Ctx) -> std::io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/tag") => respond_tag(writer, &request.body, ctx),
        ("GET", "/healthz") => write_response(writer, 200, &[], b"ok\n"),
        ("GET", "/metrics") => {
            refresh_derived_gauges(ctx);
            write_response(writer, 200, &[], Registry::global().export_jsonl().as_bytes())
        }
        ("POST" | "GET", _) => write_response(writer, 404, &[], b"no such route\n"),
        _ => write_response(writer, 405, &[], b"method not allowed\n"),
    }
}

/// The `POST /v1/tag` path: parse, validate, enqueue, await, render.
fn respond_tag(writer: &mut TcpStream, body: &[u8], ctx: &Ctx) -> std::io::Result<()> {
    let clock = Stopwatch::start();
    let _s = span("serve.request");
    let sentences = match parse_tag_body(body) {
        Ok(sentences) => sentences,
        Err(what) => {
            ctx.metrics.bad_requests.incr();
            attr("http.status", 400u64);
            return write_response(writer, 400, &[], format!("{what}\n").as_bytes());
        }
    };
    if let Err(e) = validate_sentences(&sentences) {
        ctx.metrics.bad_requests.incr();
        attr("http.status", 400u64);
        return write_response(writer, 400, &[], format!("{e}\n").as_bytes());
    }
    attr("request.sentences", sentences.len());

    let tokens: usize = sentences.iter().map(|s| s.len()).sum();
    let deadline = Deadline::new(Duration::from_millis(ctx.cfg.deadline_ms));
    let slot = ResponseSlot::new();
    let tag_request =
        TagRequest { sentences: sentences.clone(), deadline, slot: Arc::clone(&slot) };
    match ctx.queue.try_push(tag_request) {
        Ok(depth) => {
            ctx.metrics.queue_depth.set(depth as f64);
        }
        Err(PushError::Full(_)) => {
            ctx.metrics.rejected.incr();
            attr("http.status", 429u64);
            return write_response(
                writer,
                429,
                &[("Retry-After", "1")],
                b"queue full, retry shortly\n",
            );
        }
        Err(PushError::Closed(_)) => {
            attr("http.status", 503u64);
            return write_response(writer, 503, &[], b"server shutting down\n");
        }
    }
    ctx.metrics.requests.incr();
    ctx.metrics.tokens.add(tokens as u64);

    match slot.wait(&deadline) {
        TagResponse::Tags(tags) => {
            let rendered = render_tags(&sentences, &tags);
            ctx.metrics.latency.record(clock.elapsed_seconds());
            attr("http.status", 200u64);
            write_response(writer, 200, &[], rendered.as_bytes())
        }
        TagResponse::Error(e @ TagError::NonFinitePosterior { .. }) => {
            attr("http.status", 500u64);
            write_response(writer, 500, &[], format!("{e}\n").as_bytes())
        }
        TagResponse::Error(e) => {
            // shape errors on this path mean the batch re-validated
            // something the handler let through — still the client's
            // payload, still a 400
            ctx.metrics.bad_requests.incr();
            attr("http.status", 400u64);
            write_response(writer, 400, &[], format!("{e}\n").as_bytes())
        }
        TagResponse::Expired => {
            ctx.metrics.expired.incr();
            attr("http.status", 503u64);
            write_response(
                writer,
                503,
                &[("Retry-After", "1")],
                b"deadline exceeded before tagging\n",
            )
        }
    }
}

/// Recompute the gauges derived from counters — called per `/metrics`
/// scrape so the exported snapshot is self-consistent.
fn refresh_derived_gauges(ctx: &Ctx) {
    let registry = Registry::global();
    let uptime = ctx.uptime.elapsed_seconds();
    registry.gauge("serve.uptime_seconds").set(uptime);
    let requests = ctx.metrics.requests.get();
    if uptime > 0.0 {
        registry.gauge("serve.throughput_rps").set(requests as f64 / uptime);
    }
    let tokens = ctx.metrics.tokens.get();
    if tokens > 0 {
        let fallbacks = registry.counter("serve.fallback").get();
        registry.gauge("serve.fallback_rate").set(fallbacks as f64 / tokens as f64);
    }
    registry.gauge("serve.queue_depth").set(ctx.queue.depth() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphner_text::BioTag::*;

    #[test]
    fn render_is_tab_separated_with_blank_line_sentence_breaks() {
        let sentences = vec![
            Sentence::unlabelled("a", vec!["the".into(), "WT1".into()]),
            Sentence::unlabelled("b", vec!["gene".into()]),
        ];
        let tags = vec![vec![O, B], vec![O]];
        assert_eq!(render_tags(&sentences, &tags), "the\tO\nWT1\tB\n\ngene\tO\n\n");
    }

    #[test]
    fn tag_body_parses_lines_and_flags_bad_payloads() {
        let sentences = parse_tag_body(b"the WT1 gene\nanother sentence\n").unwrap();
        assert_eq!(sentences.len(), 2);
        assert_eq!(sentences[0].tokens, vec!["the", "WT1", "gene"]);
        // trailing newline is a terminator, not a third sentence
        let sentences = parse_tag_body(b"one line").unwrap();
        assert_eq!(sentences.len(), 1);
        // CRLF lines are tolerated
        let sentences = parse_tag_body(b"a b\r\nc d\r\n").unwrap();
        assert_eq!(sentences[1].tokens, vec!["c", "d"]);
        assert!(parse_tag_body(b"").is_err());
        assert!(parse_tag_body(&[0xff, 0xfe]).is_err());
        // an interior empty line parses to an empty sentence, which
        // validate_sentences then rejects with the right index
        let sentences = parse_tag_body(b"ok\n\nalso ok\n").unwrap();
        assert_eq!(validate_sentences(&sentences), Err(TagError::EmptySentence { index: 1 }));
    }
}
