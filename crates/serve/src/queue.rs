//! A bounded multi-producer single-consumer queue with reject-on-full
//! semantics — the backpressure heart of the server.
//!
//! Connection handlers `try_push` requests and the batcher pops them;
//! when the queue is at capacity the push *fails immediately* (the
//! handler answers 429) instead of blocking, so a traffic burst turns
//! into fast rejections rather than unbounded memory growth and
//! ever-later responses. Built on `Mutex<VecDeque>` + `Condvar` only:
//! no lock-free cleverness, every edge (full, empty, timeout, close)
//! unit-testable without loom.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use graphner_obs::Stopwatch;

/// A failed [`BoundedQueue::try_push`], handing the item back so the
/// caller can answer the client instead of dropping the request on the
/// floor.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — backpressure; answer 429.
    Full(T),
    /// The queue is closed (server shutting down); answer 503.
    Closed(T),
}

/// Outcome of a [`BoundedQueue::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum PopResult<T> {
    /// An item arrived (or was already waiting).
    Popped(T),
    /// The timeout elapsed with the queue still empty.
    TimedOut,
    /// The queue is closed *and drained* — the consumer can exit.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPSC queue. `try_push` never blocks; `pop_timeout`
/// blocks up to a caller-chosen linger. Close wakes every waiter.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Lock the state, recovering from poisoning: the queue holds plain
    /// bookkeeping data that stays valid even if a holder panicked.
    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enqueue without blocking. Returns the queue depth *after* the
    /// push (for the `serve.queue_depth` gauge) or hands the item back
    /// when full/closed.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Dequeue, waiting up to `timeout` for an item. A closed queue
    /// still drains: `Closed` is only returned once no items remain,
    /// so accepted requests are never abandoned at shutdown.
    pub fn pop_timeout(&self, timeout: Duration) -> PopResult<T> {
        let clock = Stopwatch::start();
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return PopResult::Popped(item);
            }
            if state.closed {
                return PopResult::Closed;
            }
            let elapsed = Duration::from_secs_f64(clock.elapsed_seconds());
            if elapsed >= timeout {
                return PopResult::TimedOut;
            }
            state = match self.not_empty.wait_timeout(state, timeout - elapsed) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Dequeue immediately if an item is waiting.
    pub fn try_pop(&self) -> Option<T> {
        self.lock().items.pop_front()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Close the queue: future pushes fail with `Closed`, and poppers
    /// are woken so they can drain the remainder and exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_preserves_fifo_order() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.depth(), 4);
        for i in 0..4 {
            assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Popped(i));
        }
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_rejects_and_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        // popping frees a slot
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Popped(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn empty_pop_times_out() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        let clock = Stopwatch::start();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), PopResult::TimedOut);
        assert!(clock.elapsed_seconds() >= 0.009);
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_rejects_pushes_but_drains_pending_items() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(q.is_closed());
        match q.try_push(3) {
            Err(PushError::Closed(item)) => assert_eq!(item, 3),
            other => panic!("expected Closed, got {other:?}"),
        }
        // accepted items still come out, then Closed
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Popped(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Popped(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopResult::Closed);
    }

    #[test]
    fn close_wakes_a_blocked_popper() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), PopResult::Closed);
    }

    #[test]
    fn push_wakes_a_blocked_popper() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(7).unwrap();
        assert_eq!(popper.join().unwrap(), PopResult::Popped(7));
    }
}
