//! The batcher: one thread that drains the request queue, coalesces
//! concurrent requests into a single `try_tag_batch` call, and routes
//! each slice of the result back to the waiting connection handler.
//!
//! # Ordering argument (why batching is invisible to clients)
//!
//! Every tagger in the workspace satisfies the [`Tagger`] contract
//! that `tag_batch`/`try_tag_batch` equal independent per-sentence
//! prediction, in input order. The batcher concatenates the sentences
//! of requests `r1..rn` in queue (FIFO) order, tags the concatenation
//! once, and splits the result back by each request's sentence count —
//! so request `ri` receives exactly the tags positions
//! `len(r1)+…+len(r(i-1)) .. +len(ri)` of the batch, which by the
//! contract equal tagging `ri` alone. Batch composition therefore
//! changes *throughput only*: any batch size, linger, or thread count
//! yields byte-identical responses (asserted end-to-end by the
//! determinism suite).

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use graphner_core::ServeConfig;
use graphner_obs::{attr, histogram, span, Stopwatch};
use graphner_text::{BioTag, Sentence, TagError, Tagger};

use crate::queue::{BoundedQueue, PopResult};

/// A per-request deadline measured against the workspace's sanctioned
/// clock ([`Stopwatch`]), started when the request is parsed. `Copy`,
/// so the handler and the queued request share one origin instant.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    clock: Stopwatch,
    budget_seconds: f64,
}

impl Deadline {
    /// A deadline expiring `budget` from now.
    pub fn new(budget: Duration) -> Deadline {
        Deadline { clock: Stopwatch::start(), budget_seconds: budget.as_secs_f64() }
    }

    /// Whether the budget is spent.
    pub fn expired(&self) -> bool {
        self.clock.elapsed_seconds() >= self.budget_seconds
    }

    /// Time left, clamped at zero.
    pub fn remaining(&self) -> Duration {
        let left = self.budget_seconds - self.clock.elapsed_seconds();
        if left <= 0.0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(left)
        }
    }
}

/// What the batcher eventually writes into a request's response slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TagResponse {
    /// Tags, one `Vec<BioTag>` per request sentence, in request order.
    Tags(Vec<Vec<BioTag>>),
    /// The request was rejected by the fallible tagging path.
    Error(TagError),
    /// The request's deadline passed before it could be tagged.
    Expired,
}

/// A write-once rendezvous between the batcher and one waiting
/// connection handler — the hand-rolled equivalent of a oneshot
/// channel.
#[derive(Debug, Default)]
pub struct ResponseSlot {
    value: Mutex<Option<TagResponse>>,
    ready: Condvar,
}

impl ResponseSlot {
    /// An empty slot.
    pub fn new() -> Arc<ResponseSlot> {
        Arc::new(ResponseSlot::default())
    }

    /// Deliver the response and wake the waiter. First write wins; a
    /// second delivery (e.g. batcher answering a request whose handler
    /// already timed out locally) is dropped.
    pub fn fill(&self, response: TagResponse) {
        let mut value = match self.value.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if value.is_none() {
            *value = Some(response);
        }
        drop(value);
        self.ready.notify_all();
    }

    /// Block until the response arrives or `deadline` expires; expiry
    /// without a delivery yields [`TagResponse::Expired`].
    pub fn wait(&self, deadline: &Deadline) -> TagResponse {
        let mut value = match self.value.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            if let Some(response) = value.take() {
                return response;
            }
            if deadline.expired() {
                return TagResponse::Expired;
            }
            value = match self.ready.wait_timeout(value, deadline.remaining()) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// One queued tagging request.
#[derive(Debug)]
pub struct TagRequest {
    /// The parsed, already shape-validated sentences.
    pub sentences: Vec<Sentence>,
    /// When the client stops waiting.
    pub deadline: Deadline,
    /// Where the answer goes.
    pub slot: Arc<ResponseSlot>,
}

/// How long the batcher sleeps per empty poll while idle. Purely a
/// shutdown-latency knob: a closed queue wakes the batcher immediately,
/// this poll only bounds how long a *pre-close* blocked pop lingers.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Run the batcher loop until the queue is closed and drained.
///
/// Flush policy: block for the first request, then keep popping while
/// the coalesced batch holds fewer than `max_batch` sentences *and*
/// `linger_us` has not elapsed since the first pop — whichever trips
/// first flushes. A request that would carry the batch past
/// `max_batch` still joins its flush (it was already dequeued; holding
/// it back would reorder).
pub fn run_batcher<T: Tagger>(queue: &BoundedQueue<TagRequest>, tagger: &T, cfg: &ServeConfig) {
    let linger = Duration::from_micros(cfg.linger_us);
    loop {
        let first = match queue.pop_timeout(IDLE_POLL) {
            PopResult::Popped(request) => request,
            PopResult::TimedOut => continue,
            PopResult::Closed => return,
        };
        let linger_clock = Stopwatch::start();
        let mut batch = vec![first];
        let mut total: usize = batch[0].sentences.len();
        while total < cfg.max_batch {
            let elapsed = Duration::from_secs_f64(linger_clock.elapsed_seconds());
            if elapsed >= linger {
                break;
            }
            match queue.pop_timeout(linger - elapsed) {
                PopResult::Popped(request) => {
                    total += request.sentences.len();
                    batch.push(request);
                }
                PopResult::TimedOut | PopResult::Closed => break,
            }
        }
        flush(tagger, batch);
    }
}

/// Tag one coalesced batch and deliver each request's slice.
fn flush<T: Tagger>(tagger: &T, batch: Vec<TagRequest>) {
    let _s = span("serve.batch");
    let mut live: Vec<TagRequest> = Vec::with_capacity(batch.len());
    for request in batch {
        if request.deadline.expired() {
            // answered, not dropped: the handler (or a late waiter)
            // sees an explicit Expired instead of silence
            request.slot.fill(TagResponse::Expired);
        } else {
            live.push(request);
        }
    }
    if live.is_empty() {
        return;
    }
    let total: usize = live.iter().map(|r| r.sentences.len()).sum();
    attr("batch.requests", live.len());
    attr("batch.sentences", total);
    histogram("serve.batch_size").record(total as f64);

    let mut all: Vec<Sentence> = Vec::with_capacity(total);
    for request in &live {
        all.extend(request.sentences.iter().cloned());
    }
    match tagger.try_tag_batch(&all) {
        Ok(tags) => {
            let mut rest = tags.into_iter();
            for request in live {
                let own: Vec<Vec<BioTag>> = rest.by_ref().take(request.sentences.len()).collect();
                request.slot.fill(TagResponse::Tags(own));
            }
        }
        Err(_) => {
            // One request poisoned the batch (handlers shape-validate
            // before enqueueing, so this is a model-side error such as
            // a non-finite posterior). Re-tag per request so only the
            // offender errors; the contract makes the others' tags
            // identical to their share of the failed batch.
            for request in live {
                match tagger.try_tag_batch(&request.sentences) {
                    Ok(tags) => request.slot.fill(TagResponse::Tags(tags)),
                    Err(e) => request.slot.fill(TagResponse::Error(e)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphner_text::NUM_TAGS;

    /// Everything-O tagger with a per-sentence call counter.
    struct CountingTagger {
        calls: std::sync::atomic::AtomicUsize,
    }

    impl Tagger for CountingTagger {
        fn predict(&self, sentence: &Sentence) -> Vec<BioTag> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            vec![BioTag::O; sentence.len()]
        }

        fn posteriors(&self, sentence: &Sentence) -> Vec<[f64; NUM_TAGS]> {
            vec![[0.0, 0.0, 1.0]; sentence.len()]
        }
    }

    fn request(tokens: &[&str], budget: Duration) -> (TagRequest, Arc<ResponseSlot>) {
        let slot = ResponseSlot::new();
        let sentences =
            vec![Sentence::unlabelled("s", tokens.iter().map(|t| t.to_string()).collect())];
        (TagRequest { sentences, deadline: Deadline::new(budget), slot: Arc::clone(&slot) }, slot)
    }

    #[test]
    fn flush_splits_the_batch_back_per_request() {
        let tagger = CountingTagger { calls: std::sync::atomic::AtomicUsize::new(0) };
        let (r1, s1) = request(&["a", "b"], Duration::from_secs(5));
        let (r2, s2) = request(&["c"], Duration::from_secs(5));
        flush(&tagger, vec![r1, r2]);
        let d = Deadline::new(Duration::from_secs(1));
        assert_eq!(s1.wait(&d), TagResponse::Tags(vec![vec![BioTag::O, BioTag::O]]));
        assert_eq!(s2.wait(&d), TagResponse::Tags(vec![vec![BioTag::O]]));
    }

    #[test]
    fn expired_requests_are_answered_not_tagged() {
        let tagger = CountingTagger { calls: std::sync::atomic::AtomicUsize::new(0) };
        let (r1, s1) = request(&["a"], Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let (r2, s2) = request(&["b"], Duration::from_secs(5));
        flush(&tagger, vec![r1, r2]);
        let d = Deadline::new(Duration::from_secs(1));
        assert_eq!(s1.wait(&d), TagResponse::Expired);
        assert_eq!(s2.wait(&d), TagResponse::Tags(vec![vec![BioTag::O]]));
        // only the live request's sentence was tagged
        assert_eq!(tagger.calls.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn slot_wait_expires_without_a_delivery() {
        let slot = ResponseSlot::new();
        let d = Deadline::new(Duration::from_millis(10));
        assert_eq!(slot.wait(&d), TagResponse::Expired);
        // a late fill after expiry is dropped, not re-delivered
        slot.fill(TagResponse::Tags(vec![]));
        let d2 = Deadline::new(Duration::from_millis(5));
        assert_eq!(slot.wait(&d2), TagResponse::Tags(vec![]));
    }

    #[test]
    fn slot_first_write_wins() {
        let slot = ResponseSlot::new();
        slot.fill(TagResponse::Expired);
        slot.fill(TagResponse::Tags(vec![]));
        let d = Deadline::new(Duration::from_secs(1));
        assert_eq!(slot.wait(&d), TagResponse::Expired);
    }

    #[test]
    fn batcher_drains_then_exits_on_close() {
        let tagger = CountingTagger { calls: std::sync::atomic::AtomicUsize::new(0) };
        let queue = BoundedQueue::new(8);
        let (r1, s1) = request(&["a"], Duration::from_secs(5));
        queue.try_push(r1).unwrap();
        queue.close();
        let cfg = ServeConfig::default();
        run_batcher(&queue, &tagger, &cfg); // returns because closed
        let d = Deadline::new(Duration::from_secs(1));
        assert_eq!(s1.wait(&d), TagResponse::Tags(vec![vec![BioTag::O]]));
    }
}
