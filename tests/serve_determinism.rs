//! Serving determinism: batching must be invisible.
//!
//! The batcher coalesces concurrent requests into single
//! `try_tag_batch` calls, so the contract to verify is that a response
//! from the server is **byte-identical** to offline `tag_batch` over
//! the same parsed sentences — at any `max_batch`, any linger window,
//! and any worker pool size. The child half trains one smoke model,
//! serves it at `max_batch` 1, 7, and the default 64, drives
//! concurrent clients against each, and checks every response against
//! the offline rendering; the parent re-runs the whole thing under
//! `GRAPHNER_THREADS=1` and `4` and compares the canonical dumps
//! byte-for-byte.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use graphner::banner::NerConfig;
use graphner::core::{GraphNer, GraphNerConfig, TestSession};
use graphner::corpusgen::{generate, CorpusProfile};
use graphner::crf::TrainConfig;
use graphner::serve::{render_tags, start};
use graphner::text::{tokenize, Sentence, Tagger};

fn quick_cfg() -> NerConfig {
    NerConfig {
        train: TrainConfig { max_iterations: 60, ..Default::default() },
        ..Default::default()
    }
}

/// POST one body to `/v1/tag` on a fresh connection; returns
/// `(status, response body)`.
fn post_tag(addr: SocketAddr, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to in-process server");
    stream.set_nodelay(true).expect("set nodelay");
    let request = format!(
        "POST /v1/tag HTTP/1.1\r\nHost: det\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 =
        raw.split_ascii_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let (_, response_body) = raw.split_once("\r\n\r\n").expect("header/body separator");
    (status, response_body.to_string())
}

/// The child workload: train once, then for each batch size serve the
/// model, fire concurrent single-line requests, and append every
/// response (in request order) to the canonical dump after checking it
/// against the offline `tag_batch` rendering.
fn serve_dump() -> String {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let unlabelled = corpus.test.without_tags();
    let mut session = TestSession::new(&model, &unlabelled);

    // request bodies: one corpus sentence per request, re-joined the
    // way a client would send it
    let lines: Vec<String> = unlabelled
        .sentences
        .iter()
        .filter(|s| !s.tokens.is_empty())
        .take(12)
        .map(|s| s.tokens.join(" "))
        .collect();
    assert!(lines.len() >= 8, "smoke corpus too small to exercise batching");

    // the offline reference re-parses each line exactly as the server
    // does (tokenize), then tags the whole set in one offline call
    let offline: Vec<Sentence> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| Sentence::unlabelled(format!("q{i}"), tokenize(line)))
        .collect();
    let offline_tags = session.tagger(model.config()).tag_batch(&offline);
    let expected: Vec<String> = offline
        .iter()
        .zip(&offline_tags)
        .map(|(s, t)| render_tags(std::slice::from_ref(s), std::slice::from_ref(t)))
        .collect();

    let mut dump = String::new();
    for max_batch in [1usize, 7, GraphNerConfig::default().serve.max_batch] {
        let cfg = GraphNerConfig::builder().max_batch(max_batch).build().expect("valid config");
        let tagger = session.tagger(&cfg);
        let handle = start(tagger, cfg.serve, "127.0.0.1:0").expect("start in-process server");
        let addr = handle.addr();

        // 4 concurrent clients × 3 requests each so the linger window
        // actually coalesces requests at max_batch > 1
        let responses: Vec<(usize, String)> = std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for client in 0..4usize {
                let lines = &lines;
                workers.push(scope.spawn(move || {
                    let mut own = Vec::new();
                    for (i, line) in lines.iter().enumerate().skip(client).step_by(4) {
                        let (status, body) = post_tag(addr, line);
                        assert_eq!(status, 200, "request {i} failed at max_batch={max_batch}");
                        own.push((i, body));
                    }
                    own
                }));
            }
            let mut all: Vec<(usize, String)> =
                workers.into_iter().flat_map(|w| w.join().expect("client thread")).collect();
            all.sort_by_key(|(i, _)| *i);
            all
        });
        handle.shutdown();

        dump.push_str(&format!("max_batch={max_batch}\n"));
        for (i, body) in &responses {
            assert_eq!(
                body, &expected[*i],
                "server response {i} diverged from offline tag_batch at max_batch={max_batch}"
            );
            dump.push_str(body);
        }
    }
    dump
}

/// Child half: run under the `GRAPHNER_THREADS` the parent set and
/// write the canonical serve dump to `GRAPHNER_DUMP_PATH`.
#[test]
#[ignore = "spawned as a subprocess by serve_thread_and_batch_invariance"]
fn dump_serve_responses() {
    let path = std::env::var("GRAPHNER_DUMP_PATH")
        .expect("GRAPHNER_DUMP_PATH must be set when running the dump half");
    std::fs::write(&path, serve_dump()).expect("write serve dump");
}

/// The pool reads `GRAPHNER_THREADS` once at first use, so two pool
/// sizes need two processes. Each child already asserts
/// server == offline `tag_batch` at batch sizes {1, 7, 64}; comparing
/// the two dumps additionally pins the whole train + serve pipeline to
/// be byte-identical across pool sizes.
#[test]
fn serve_thread_and_batch_invariance_byte_identical() {
    let exe = std::env::current_exe().expect("test executable path");
    let mut dumps = Vec::new();
    for threads in ["1", "4"] {
        let path = std::env::temp_dir()
            .join(format!("graphner-serve-det-{}-t{threads}.txt", std::process::id()));
        let status = std::process::Command::new(&exe)
            .args(["dump_serve_responses", "--exact", "--ignored", "--test-threads", "1"])
            .env("GRAPHNER_THREADS", threads)
            .env("GRAPHNER_DUMP_PATH", &path)
            .status()
            .expect("spawn serve dump subprocess");
        assert!(status.success(), "serve dump subprocess failed for GRAPHNER_THREADS={threads}");
        let dump = std::fs::read_to_string(&path).expect("read serve dump");
        let _ = std::fs::remove_file(&path);
        assert!(
            dump.contains("max_batch=1\n") && dump.contains("max_batch=7\n"),
            "dump for GRAPHNER_THREADS={threads} is missing batch-size sections"
        );
        dumps.push(dump);
    }
    assert_eq!(dumps[0], dumps[1], "serve responses must be byte-identical at 1 and 4 threads");
}
