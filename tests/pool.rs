//! Worker-pool contract tests against the vendored `rayon` shim.
//!
//! The pool's determinism argument (DESIGN.md §10) rests on two
//! properties checked here from outside the crate: chunk boundaries
//! are a pure function of input length, and parallel `map` + `collect`
//! preserves input order exactly.

use proptest::prelude::*;
use rayon::prelude::*;

#[test]
fn chunk_ranges_partition_any_length_in_order() {
    for len in [0usize, 1, 2, 63, 64, 65, 1000, 4097] {
        let ranges = rayon::chunk_ranges(len);
        let mut expected_start = 0;
        for r in &ranges {
            assert_eq!(r.start, expected_start, "ranges must tile [0, len) gaplessly");
            assert!(r.end > r.start, "ranges must be non-empty");
            expected_start = r.end;
        }
        assert_eq!(expected_start, len);
    }
}

#[test]
fn pool_reports_at_least_one_thread() {
    assert!(rayon::current_num_threads() >= 1);
    let stats = rayon::pool_stats();
    assert_eq!(stats.threads, rayon::current_num_threads());
    assert_eq!(stats.idle_waits.len(), rayon::IDLE_BUCKETS);
}

proptest! {
    /// Parallel map + collect must equal the sequential result — the
    /// order-preserving chunk merge guarantee, for arbitrary inputs.
    #[test]
    fn par_map_collect_preserves_order(input in prop::collection::vec(-1_000_000i64..1_000_000, 0..500)) {
        let parallel: Vec<i64> = input.par_iter().map(|&x| x.wrapping_mul(3) - 7).collect();
        let sequential: Vec<i64> = input.iter().map(|&x| x.wrapping_mul(3) - 7).collect();
        prop_assert_eq!(parallel, sequential);
    }

    /// Associative-commutative reduction must match the sequential sum
    /// regardless of how chunks regroup the terms (exact in i64).
    #[test]
    fn par_sum_matches_sequential(input in prop::collection::vec(-1_000i64..1_000, 0..500)) {
        let parallel: i64 = input.par_iter().map(|&x| x).sum();
        let sequential: i64 = input.iter().sum();
        prop_assert_eq!(parallel, sequential);
    }

    /// Enumerate + zip run through the indexed source path; indices must
    /// line up with positions exactly.
    #[test]
    fn par_enumerate_indices_match_positions(len in 0usize..300) {
        let data: Vec<usize> = (0..len).map(|i| i * 2).collect();
        let pairs: Vec<(usize, usize)> = data.par_iter().enumerate().map(|(i, &v)| (i, v)).collect();
        for (i, (idx, v)) in pairs.iter().enumerate() {
            prop_assert_eq!(i, *idx);
            prop_assert_eq!(*v, i * 2);
        }
    }
}
