//! Determinism regression: the transductive TEST procedure must be a
//! pure function of (trained model, test corpus, configuration).
//!
//! The model is trained **once** — L-BFGS training parallelizes its
//! gradient reduction, so run-to-run weight bits are not guaranteed —
//! and then tested repeatedly. Everything downstream of training
//! (posterior extraction, PMI vectors, k-NN construction, propagation,
//! decoding, statistics) iterates in deterministic order, so two fresh
//! sessions over the same model must agree byte-for-byte on every
//! output except wall-clock timings.

use graphner::banner::NerConfig;
use graphner::core::{GraphNer, GraphNerConfig, ShardSize, TestOutput, TestSession};
use graphner::corpusgen::{generate, CorpusProfile};
use graphner::crf::TrainConfig;

fn quick_cfg() -> NerConfig {
    NerConfig {
        train: TrainConfig { max_iterations: 60, ..Default::default() },
        ..Default::default()
    }
}

/// Canonical byte rendering of a [`TestOutput`], excluding the timing
/// fields (wall clock is the one legitimately nondeterministic part).
fn canonical(out: &TestOutput) -> String {
    format!(
        "predictions={:?}\nbase_predictions={:?}\nstats={:?}\niterations={}\nconverged={}\n",
        out.predictions, out.base_predictions, out.stats, out.propagation_iterations, out.converged
    )
}

#[test]
fn two_fresh_sessions_produce_byte_identical_output() {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let unlabelled = corpus.test.without_tags();

    let out_a = TestSession::new(&model, &unlabelled).run(model.config());
    let out_b = TestSession::new(&model, &unlabelled).run(model.config());
    assert_eq!(canonical(&out_a), canonical(&out_b));

    // a session reusing its cached artifacts must agree with a fresh one
    let mut session = TestSession::new(&model, &unlabelled);
    let first = session.run(model.config());
    let cached = session.run(model.config());
    assert_eq!(canonical(&first), canonical(&out_a));
    assert_eq!(canonical(&cached), canonical(&out_a));
}

/// Train + test + a small ablation sweep, rendered canonically.
///
/// This is the workload both halves of the thread-invariance check run:
/// the `GRAPHNER_THREADS=1` child and the `GRAPHNER_THREADS=4` child
/// must produce byte-identical dumps, which covers CRF training
/// (parallel gradient reduction), posterior extraction, k-NN
/// construction, propagation, decoding, and the session cache.
fn full_pipeline_dump() -> String {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    let (model, report) =
        GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let unlabelled = corpus.test.without_tags();
    let mut dump = format!(
        "train_iterations={}\ntrain_objective={:?}\n",
        report.report.iterations, report.report.objective
    );
    let mut session = TestSession::new(&model, &unlabelled);
    dump.push_str(&canonical(&session.run(model.config())));
    let variants = [
        GraphNerConfig { k: 5, ..GraphNerConfig::default() },
        GraphNerConfig { alpha: 0.5, ..GraphNerConfig::default() },
        // sweep-schedule rows: a deliberately awkward fixed shard size,
        // and the active-set scheduler — both must be thread-invariant
        GraphNerConfig::builder().shard_size(ShardSize::Fixed(7)).build().expect("valid config"),
        GraphNerConfig::builder().active_set(true).build().expect("valid config"),
    ];
    for cfg in &variants {
        dump.push_str("ablation_row:\n");
        dump.push_str(&canonical(&session.run(cfg)));
    }
    dump
}

/// Child half of the thread-invariance check: run under a specific
/// `GRAPHNER_THREADS` and write the canonical pipeline dump to the path
/// named by `GRAPHNER_DUMP_PATH`. Ignored by default; the parent test
/// below invokes it explicitly via the test harness.
#[test]
#[ignore = "spawned as a subprocess by thread_count_invariance"]
fn dump_canonical_outputs() {
    let path = std::env::var("GRAPHNER_DUMP_PATH")
        .expect("GRAPHNER_DUMP_PATH must be set when running the dump half");
    std::fs::write(&path, full_pipeline_dump()).expect("write canonical dump");
}

/// The pool reads `GRAPHNER_THREADS` once at first use, so exercising
/// two pool sizes requires two processes. Each child runs the full
/// train + test + ablation pipeline and dumps its canonical outputs;
/// the dumps must match byte-for-byte.
#[test]
fn thread_count_invariance_byte_identical_across_pool_sizes() {
    let exe = std::env::current_exe().expect("test executable path");
    let mut dumps = Vec::new();
    for threads in ["1", "4"] {
        let path = std::env::temp_dir()
            .join(format!("graphner-det-{}-t{threads}.txt", std::process::id()));
        let status = std::process::Command::new(&exe)
            .args(["dump_canonical_outputs", "--exact", "--ignored", "--test-threads", "1"])
            .env("GRAPHNER_THREADS", threads)
            .env("GRAPHNER_DUMP_PATH", &path)
            .status()
            .expect("spawn dump subprocess");
        assert!(status.success(), "dump subprocess failed for GRAPHNER_THREADS={threads}");
        let dump = std::fs::read_to_string(&path).expect("read canonical dump");
        let _ = std::fs::remove_file(&path);
        assert!(dump.contains("predictions="), "dump for GRAPHNER_THREADS={threads} looks empty");
        dumps.push(dump);
    }
    assert_eq!(dumps[0], dumps[1], "pipeline outputs must be byte-identical at 1 and 4 threads");
}

/// Child half of the trace byte-identity check: run train + test under
/// the environment the parent sets (single-thread pool, logical trace
/// clock), export the whole span registry as Chrome-trace JSON, and
/// write it to `GRAPHNER_DUMP_PATH`.
#[test]
#[ignore = "spawned as a subprocess by logical_clock_trace_is_byte_identical"]
fn dump_logical_trace() {
    let path = std::env::var("GRAPHNER_DUMP_PATH")
        .expect("GRAPHNER_DUMP_PATH must be set when running the trace dump half");
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let unlabelled = corpus.test.without_tags();
    let _ = TestSession::new(&model, &unlabelled).run(model.config());
    let spans = graphner::obs::span::drain();
    assert!(!spans.is_empty(), "pipeline run must leave spans in the registry");
    let json = graphner::obs::chrome_trace_json(&spans, graphner::obs::TraceClock::from_env());
    std::fs::write(&path, json).expect("write trace dump");
}

/// With `GRAPHNER_TRACE_CLOCK=logical` timestamps are registry sequence
/// numbers instead of wall-clock reads, and `GRAPHNER_THREADS=1` pins
/// span ordering, so two identical runs must serialize byte-identical
/// trace documents — the trace export adds no nondeterminism of its
/// own. (Training weight bits are themselves deterministic at a fixed
/// thread count, per the thread-invariance test above.)
#[test]
fn logical_clock_trace_is_byte_identical_across_runs() {
    let exe = std::env::current_exe().expect("test executable path");
    let mut dumps = Vec::new();
    for run in 0..2 {
        let path =
            std::env::temp_dir().join(format!("graphner-trace-{}-r{run}.json", std::process::id()));
        let status = std::process::Command::new(&exe)
            .args(["dump_logical_trace", "--exact", "--ignored", "--test-threads", "1"])
            .env("GRAPHNER_THREADS", "1")
            .env("GRAPHNER_TRACE_CLOCK", "logical")
            .env("GRAPHNER_DUMP_PATH", &path)
            .status()
            .expect("spawn trace dump subprocess");
        assert!(status.success(), "trace dump subprocess failed on run {run}");
        let dump = std::fs::read_to_string(&path).expect("read trace dump");
        let _ = std::fs::remove_file(&path);
        assert!(dump.contains("\"traceEvents\""), "run {run} produced no trace document");
        assert!(dump.contains("crf.train"), "run {run} trace is missing the training span");
        dumps.push(dump);
    }
    assert_eq!(dumps[0], dumps[1], "logical-clock traces must be byte-identical across runs");
}

/// The shard size is a pure execution knob: any fixed size (or auto)
/// must reproduce the default run's predictions, beliefs, and
/// convergence byte-for-byte, with only the partition-shape statistics
/// differing.
#[test]
fn shard_size_never_changes_pipeline_output() {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let unlabelled = corpus.test.without_tags();
    let mut session = TestSession::new(&model, &unlabelled);
    let baseline = session.run(model.config());
    for size in [ShardSize::Fixed(1), ShardSize::Fixed(7), ShardSize::Fixed(4096)] {
        let cfg = GraphNerConfig::builder().shard_size(size).build().expect("valid config");
        let out = session.run(&cfg);
        assert_eq!(out.predictions, baseline.predictions, "predictions changed under {size:?}");
        assert_eq!(
            out.base_predictions, baseline.base_predictions,
            "base predictions changed under {size:?}"
        );
        assert_eq!(out.propagation_iterations, baseline.propagation_iterations);
        assert_eq!(out.converged, baseline.converged);
    }
}

/// The active-set scheduler may skip converged shards but is itself
/// deterministic: two sessions running it must agree byte-for-byte.
#[test]
fn active_set_runs_are_reproducible() {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let unlabelled = corpus.test.without_tags();
    let cfg = GraphNerConfig::builder()
        .shard_size(ShardSize::Fixed(64))
        .active_set(true)
        .build()
        .expect("valid config");
    let out_a = TestSession::new(&model, &unlabelled).run(&cfg);
    let out_b = TestSession::new(&model, &unlabelled).run(&cfg);
    assert_eq!(canonical(&out_a), canonical(&out_b));
}

#[test]
fn ablation_sweep_rows_are_reproducible() {
    let corpus = generate(&CorpusProfile::aml().scaled(0.02));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let unlabelled = corpus.test.without_tags();
    let variants = [
        GraphNerConfig { k: 5, ..GraphNerConfig::default() },
        GraphNerConfig { alpha: 0.5, ..GraphNerConfig::default() },
    ];
    // the same row computed through a shared session (cached posteriors
    // and vectors) and through an isolated session must be identical
    let mut shared = TestSession::new(&model, &unlabelled);
    for cfg in &variants {
        let via_shared = shared.run(cfg);
        let via_fresh = TestSession::new(&model, &unlabelled).run(cfg);
        assert_eq!(canonical(&via_shared), canonical(&via_fresh));
    }
}
