//! Determinism regression: the transductive TEST procedure must be a
//! pure function of (trained model, test corpus, configuration).
//!
//! The model is trained **once** — L-BFGS training parallelizes its
//! gradient reduction, so run-to-run weight bits are not guaranteed —
//! and then tested repeatedly. Everything downstream of training
//! (posterior extraction, PMI vectors, k-NN construction, propagation,
//! decoding, statistics) iterates in deterministic order, so two fresh
//! sessions over the same model must agree byte-for-byte on every
//! output except wall-clock timings.

use graphner::banner::NerConfig;
use graphner::core::{GraphNer, GraphNerConfig, TestOutput, TestSession};
use graphner::corpusgen::{generate, CorpusProfile};
use graphner::crf::TrainConfig;

fn quick_cfg() -> NerConfig {
    NerConfig {
        train: TrainConfig { max_iterations: 60, ..Default::default() },
        ..Default::default()
    }
}

/// Canonical byte rendering of a [`TestOutput`], excluding the timing
/// fields (wall clock is the one legitimately nondeterministic part).
fn canonical(out: &TestOutput) -> String {
    format!(
        "predictions={:?}\nbase_predictions={:?}\nstats={:?}\niterations={}\nconverged={}\n",
        out.predictions, out.base_predictions, out.stats, out.propagation_iterations, out.converged
    )
}

#[test]
fn two_fresh_sessions_produce_byte_identical_output() {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let unlabelled = corpus.test.without_tags();

    let out_a = TestSession::new(&model, &unlabelled).run(model.config());
    let out_b = TestSession::new(&model, &unlabelled).run(model.config());
    assert_eq!(canonical(&out_a), canonical(&out_b));

    // a session reusing its cached artifacts must agree with a fresh one
    let mut session = TestSession::new(&model, &unlabelled);
    let first = session.run(model.config());
    let cached = session.run(model.config());
    assert_eq!(canonical(&first), canonical(&out_a));
    assert_eq!(canonical(&cached), canonical(&out_a));
}

#[test]
fn ablation_sweep_rows_are_reproducible() {
    let corpus = generate(&CorpusProfile::aml().scaled(0.02));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let unlabelled = corpus.test.without_tags();
    let variants = [
        GraphNerConfig { k: 5, ..GraphNerConfig::default() },
        GraphNerConfig { alpha: 0.5, ..GraphNerConfig::default() },
    ];
    // the same row computed through a shared session (cached posteriors
    // and vectors) and through an isolated session must be identical
    let mut shared = TestSession::new(&model, &unlabelled);
    for cfg in &variants {
        let via_shared = shared.run(cfg);
        let via_fresh = TestSession::new(&model, &unlabelled).run(cfg);
        assert_eq!(canonical(&via_shared), canonical(&via_fresh));
    }
}
