//! Cross-crate property-based tests on the core invariants.

use graphner::core::check;
use graphner::crf::{viterbi_tags, ChainCrf, Order, SentenceFeatures};
use graphner::graph::{
    knn_inverted_index, propagate, propagate_partitioned, propagate_reference, KnnGraph, Partition,
    PropagationParams, ShardSize, SparseVec, CONVERGENCE_TOL,
};
use graphner::text::sentence::{mentions_to_tags, tags_to_mentions};
use graphner::text::{tokenize, BioTag, Mention, Sentence};
use proptest::prelude::*;

fn arb_tags(max_len: usize) -> impl Strategy<Value = Vec<BioTag>> {
    prop::collection::vec(0usize..3, 1..max_len).prop_map(|v| {
        // repair into a well-formed sequence
        let mut tags: Vec<BioTag> = v.into_iter().map(BioTag::from_index).collect();
        graphner::text::tag::repair_bio(&mut tags);
        tags
    })
}

/// Graph, initial beliefs, and reference distributions of one random
/// propagation problem.
type PropagationProblem = (KnnGraph, Vec<[f64; 3]>, Vec<Option<[f64; 3]>>);

/// Seeded random propagation problem: a `k`-out-degree graph over `n`
/// vertices (xorshift weights), random simplex beliefs, and a
/// reference distribution on every even vertex.
fn random_propagation_problem(n: usize, k: usize, seed: u64) -> PropagationProblem {
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let adj: Vec<Vec<(u32, f32)>> = (0..n)
        .map(|i| {
            (0..k)
                .map(|_| {
                    let mut nb = (next() % n as u64) as u32;
                    if nb as usize == i {
                        nb = (nb + 1) % n as u32;
                    }
                    (nb, ((next() % 999) + 1) as f32 / 1000.0)
                })
                .collect()
        })
        .collect();
    let g = KnnGraph::from_adjacency(adj, k);
    let x: Vec<[f64; 3]> = (0..n)
        .map(|_| {
            let a = ((next() % 1000) as f64 + 1.0) / 1001.0;
            let b = ((next() % 1000) as f64 + 1.0) / 1001.0;
            let c = ((next() % 1000) as f64 + 1.0) / 1001.0;
            let z = a + b + c;
            [a / z, b / z, c / z]
        })
        .collect();
    let x_ref: Vec<Option<[f64; 3]>> =
        (0..n).map(|i| if i % 2 == 0 { Some([0.6, 0.3, 0.1]) } else { None }).collect();
    (g, x, x_ref)
}

proptest! {
    #[test]
    fn bio_mention_round_trip(tags in arb_tags(24)) {
        let mentions = tags_to_mentions(&tags);
        let rebuilt = mentions_to_tags(&mentions, tags.len());
        prop_assert_eq!(tags_to_mentions(&rebuilt), mentions);
    }

    #[test]
    fn mentions_never_overlap(tags in arb_tags(24)) {
        let mentions = tags_to_mentions(&tags);
        for pair in mentions.windows(2) {
            prop_assert!(!pair[0].overlaps(&pair[1]));
            prop_assert!(pair[0].end <= pair[1].start);
        }
    }

    #[test]
    fn tokenizer_preserves_nonwhitespace(text in "[ a-zA-Z0-9().,'-]{0,60}") {
        let joined: String = tokenize(&text).concat();
        let spacefree: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(joined, spacefree);
    }

    #[test]
    fn spacefree_offsets_round_trip(
        words in prop::collection::vec("[a-zA-Z0-9]{1,6}", 1..10),
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let n = words.len();
        let start = ((n as f64 - 1.0) * start_frac) as usize;
        let end = (start + 1 + ((n - start - 1) as f64 * len_frac) as usize).min(n);
        let sentence = Sentence::unlabelled("p", words);
        let m = Mention::new(start, end);
        let (f, l) = sentence.mention_to_offsets(&m);
        prop_assert_eq!(sentence.offsets_to_mention(f, l), Some(m));
    }

    #[test]
    fn crf_posteriors_are_distributions(
        seed in 1u64..1000,
        len in 1usize..8,
    ) {
        let mut crf = ChainCrf::new(Order::One, 6);
        let mut state = seed;
        let params: Vec<f64> = (0..crf.num_params()).map(|_| {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            ((state % 400) as f64 / 100.0) - 2.0
        }).collect();
        crf.set_params(params);
        let obs = (0..len).map(|i| vec![(i % 6) as u32]).collect();
        let sent = SentenceFeatures { obs, gold: None };
        let post = crf.posteriors(&sent);
        // the same guard the pipeline's PosteriorStage runs in debug
        // builds; panics (failing the test) on any violation
        check::assert_distributions("forward-backward posteriors", &post);
        for row in post {
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    #[test]
    fn forward_backward_survives_extreme_weights(
        seed in 1u64..300,
        len in 1usize..10,
        scale in 1.0f64..30.0,
    ) {
        // weights far outside the trained range must still produce
        // guard-clean posteriors (log-space forward-backward)
        let mut crf = ChainCrf::new(Order::One, 4);
        let mut state = seed;
        let params: Vec<f64> = (0..crf.num_params()).map(|_| {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (((state % 2000) as f64 / 1000.0) - 1.0) * scale
        }).collect();
        crf.set_params(params);
        let obs = (0..len).map(|i| vec![(i % 4) as u32, ((i + 1) % 4) as u32]).collect();
        let sent = SentenceFeatures { obs, gold: None };
        check::assert_distributions(
            "forward-backward posteriors (extreme weights)",
            &crf.posteriors(&sent),
        );
    }

    #[test]
    fn symmetrized_knn_passes_symmetry_guard(
        specs in prop::collection::vec(
            prop::collection::vec((0u32..30, 0.01f32..10.0), 1..8),
            2..15,
        ),
        k in 1usize..5,
    ) {
        let vectors: Vec<SparseVec> = specs
            .into_iter()
            .map(|pairs| {
                let mut v = SparseVec::from_pairs(pairs);
                v.normalize();
                v
            })
            .collect();
        let g = knn_inverted_index(&vectors, k);
        // the raw graph is directed, but mutual edges must agree on
        // their cosine weight…
        check::assert_edge_weights_symmetric("raw k-NN", &g);
        // …and the undirected closure must be fully symmetric
        let s = g.symmetrized();
        check::assert_symmetric_knn("symmetrized k-NN", &s);
        prop_assert!(s.num_edges() >= g.num_edges());
        prop_assert_eq!(s.num_vertices(), g.num_vertices());
    }

    #[test]
    fn viterbi_tags_is_argmax_over_samples(
        probs in prop::collection::vec((0.01f64..1.0, 0.01f64..1.0, 0.01f64..1.0), 1..5),
    ) {
        // normalize node beliefs
        let nodes: Vec<[f64; 3]> = probs.iter().map(|&(a, b, c)| {
            let z = a + b + c;
            [a / z, b / z, c / z]
        }).collect();
        let trans = [[1.0 / 3.0; 3]; 3];
        let best = viterbi_tags(&nodes, &trans);
        let score = |tags: &[BioTag]| -> f64 {
            tags.iter().enumerate().map(|(i, t)| nodes[i][t.index()].ln()).sum()
        };
        let best_score = score(&best);
        // exhaustive check (≤ 81 paths)
        let l = nodes.len();
        for code in 0..3usize.pow(l as u32) {
            let mut c = code;
            let tags: Vec<BioTag> = (0..l).map(|_| {
                let t = BioTag::from_index(c % 3);
                c /= 3;
                t
            }).collect();
            prop_assert!(score(&tags) <= best_score + 1e-9);
        }
    }

    #[test]
    fn propagation_output_stays_in_simplex(
        n in 2usize..20,
        k in 1usize..4,
        mu in 1e-6f64..1.0,
        nu in 1e-6f64..1.0,
        anchor in 0.0f64..2.0,
        seed in 0u64..500,
    ) {
        let (g, mut x, x_ref) = random_propagation_problem(n, k, seed);
        propagate(&g, &mut x, &x_ref, &PropagationParams {
            mu, nu, iterations: 4, self_anchor: anchor,
        });
        for d in &x {
            let s: f64 = d.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9, "sum {s}");
            prop_assert!(d.iter().all(|&p| p >= -1e-12));
        }
    }

    /// The sharded engine must reproduce the unsharded reference sweep
    /// bit-for-bit on arbitrary graphs at arbitrary shard sizes. (CI
    /// runs the suite under both `GRAPHNER_THREADS=1` and `=4`, so this
    /// also pins the engine across pool sizes.)
    #[test]
    fn sharded_propagation_matches_reference_bitwise(
        n in 2usize..24,
        k in 1usize..4,
        mu in 1e-6f64..1.0,
        nu in 1e-6f64..1.0,
        anchor in 0.0f64..2.0,
        shard in 1usize..32,
        seed in 0u64..500,
    ) {
        let (g, x0, x_ref) = random_propagation_problem(n, k, seed);
        let params = PropagationParams { mu, nu, iterations: 4, self_anchor: anchor };
        let mut expected = x0.clone();
        let ref_report = propagate_reference(&g, &mut expected, &x_ref, &params);
        let partition = Partition::new(&g, ShardSize::Fixed(shard));
        let mut x = x0.clone();
        let report = propagate_partitioned(&g, &partition, &mut x, &x_ref, &params, false);
        for (a, b) in x.iter().zip(&expected) {
            for (p, q) in a.iter().zip(b) {
                prop_assert_eq!(p.to_bits(), q.to_bits());
            }
        }
        prop_assert_eq!(report.final_residual.to_bits(), ref_report.final_residual.to_bits());
        prop_assert_eq!(report.shards_skipped, 0);
    }

    /// With the active-set scheduler on, skipped shards may lag the
    /// reference, but never by more than the convergence tolerance.
    /// (`nu >= 0.05` keeps the Jacobi contraction factor away from 1,
    /// where the drift bound `ACTIVE_SET_TOL / (1 - rho)` loosens.)
    #[test]
    fn active_set_propagation_stays_within_tolerance(
        n in 2usize..24,
        k in 1usize..4,
        mu in 1e-6f64..1.0,
        nu in 0.05f64..1.0,
        anchor in 0.0f64..2.0,
        shard in 1usize..16,
        seed in 0u64..500,
    ) {
        let (g, x0, x_ref) = random_propagation_problem(n, k, seed);
        let params = PropagationParams { mu, nu, iterations: 8, self_anchor: anchor };
        let mut expected = x0.clone();
        propagate_reference(&g, &mut expected, &x_ref, &params);
        let partition = Partition::new(&g, ShardSize::Fixed(shard));
        let mut x = x0.clone();
        propagate_partitioned(&g, &partition, &mut x, &x_ref, &params, true);
        for (a, b) in x.iter().zip(&expected) {
            for (p, q) in a.iter().zip(b) {
                prop_assert!((p - q).abs() <= CONVERGENCE_TOL, "diff {}", (p - q).abs());
            }
        }
    }

    #[test]
    fn cosine_bounded_for_nonnegative_vectors(
        a in prop::collection::vec((0u32..50, 0.01f32..10.0), 1..12),
        b in prop::collection::vec((0u32..50, 0.01f32..10.0), 1..12),
    ) {
        let va = SparseVec::from_pairs(a);
        let vb = SparseVec::from_pairs(b);
        let c = va.cosine(&vb);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&c), "cosine {c}");
        prop_assert!((va.cosine(&va) - 1.0).abs() < 1e-5);
    }
}

/// A randomly-shaped span tree: each node is one span guard whose
/// children open and close strictly inside it.
#[derive(Clone, Debug)]
struct SpanTree(Vec<SpanTree>);

/// Decode a walk into a tree: each op either descends into a fresh
/// child (non-zero) or climbs back up one level (zero). Any op vector
/// maps to a valid tree, so the strategy space needs no filtering.
fn span_tree_from_walk(ops: &[usize]) -> SpanTree {
    fn insert(node: &mut SpanTree, path: &[usize]) -> usize {
        match path.split_first() {
            None => {
                node.0.push(SpanTree(Vec::new()));
                node.0.len() - 1
            }
            Some((&head, rest)) => insert(&mut node.0[head], rest),
        }
    }
    let mut root = SpanTree(Vec::new());
    let mut path: Vec<usize> = Vec::new();
    for &op in ops {
        if op == 0 {
            path.pop();
        } else {
            let idx = insert(&mut root, &path);
            if path.len() < 6 {
                path.push(idx);
            }
        }
    }
    root
}

/// Open one span per tree node, recursively. Span names must be
/// `&'static str`, so nodes draw from a fixed pool keyed by depth and
/// sibling index.
fn run_span_tree(tree: &SpanTree, depth: usize, sibling: usize) {
    const NAMES: [&str; 5] = ["prop.root", "prop.left", "prop.mid", "prop.right", "prop.deep"];
    let _guard = graphner::obs::span(NAMES[(depth + sibling) % NAMES.len()]);
    for (i, child) in tree.0.iter().enumerate() {
        run_span_tree(child, depth + 1, i);
    }
}

proptest! {
    /// The trace export of any span tree is a balanced, properly
    /// nested event stream under both clocks: every `End` closes the
    /// most recent open `Begin` of the same name, nothing stays open,
    /// and the logical clock gives every event a distinct timestamp
    /// that agrees with the global sequence order.
    #[test]
    fn trace_events_nest_properly_over_random_span_trees(
        ops in prop::collection::vec(0usize..4, 1..48),
    ) {
        use graphner::obs::{trace_events, with_capture, TraceClock, TracePhase};
        let tree = span_tree_from_walk(&ops);
        let ((), spans) = with_capture(|| run_span_tree(&tree, 0, 0));
        prop_assert!(!spans.is_empty());
        for clock in [TraceClock::Wall, TraceClock::Logical] {
            let events = trace_events(&spans, clock);
            prop_assert_eq!(events.len(), spans.len() * 2);
            let mut open: Vec<&str> = Vec::new();
            for e in &events {
                match e.phase {
                    TracePhase::Begin => open.push(e.name),
                    TracePhase::End => prop_assert_eq!(open.pop(), Some(e.name)),
                }
            }
            prop_assert!(open.is_empty(), "unclosed spans: {:?}", open);
            // events come out in global sequence order…
            prop_assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
            if clock == TraceClock::Logical {
                // …and the logical clock is that order, rebased to zero
                prop_assert_eq!(events[0].ts, 0);
                prop_assert!(events.windows(2).all(|w| w[0].ts < w[1].ts));
            }
        }
    }
}
