//! Cross-crate integration for the staged pipeline and the model
//! persistence layer: a cached [`TestSession`] must reproduce the
//! one-shot `GraphNer::test` exactly, and a saved model must reload
//! into byte-identical predictions.

use graphner::banner::NerConfig;
use graphner::core::persist::{load_model, save_model};
use graphner::core::timings::stage;
use graphner::core::{GraphFeatureSet, GraphNer, GraphNerConfig, TestSession};
use graphner::corpusgen::{generate, CorpusProfile};
use graphner::crf::TrainConfig;
use graphner::obs::with_capture;

fn quick_cfg() -> NerConfig {
    NerConfig {
        train: TrainConfig { max_iterations: 80, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn session_sweep_matches_one_shot_runs_and_extracts_posteriors_once() {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let test = corpus.test.without_tags();

    // the Table III ablation rows, driven through one session
    let rows = [
        GraphNerConfig::default(),
        GraphNerConfig { k: 5, ..GraphNerConfig::default() },
        GraphNerConfig { feature_set: GraphFeatureSet::Lexical, ..GraphNerConfig::default() },
        GraphNerConfig { alpha: 0.3, ..GraphNerConfig::default() },
    ];
    let mut session = TestSession::new(&model, &test);
    let (staged, spans) =
        with_capture(|| rows.iter().map(|cfg| session.run(cfg)).collect::<Vec<_>>());

    // the acceptance criterion of the refactor: corpus posteriors are
    // extracted once for the whole sweep, not once per row
    let posterior_spans = spans.iter().filter(|s| s.name == stage::POSTERIORS).count();
    assert_eq!(posterior_spans, 1, "posteriors must be cached across ablation rows");
    // three distinct (feature set, K) pairs → three graph builds
    let graph_spans = spans.iter().filter(|s| s.name == stage::GRAPH).count();
    assert_eq!(graph_spans, 3);

    // every cached row is byte-identical to a fresh uncached model run
    for (cfg, out) in rows.iter().zip(&staged) {
        let fresh = model.reconfigured(cfg.clone()).test(&test);
        assert_eq!(out.predictions, fresh.predictions);
        assert_eq!(out.base_predictions, fresh.base_predictions);
        assert_eq!(out.stats.num_edges, fresh.stats.num_edges);
    }
}

#[test]
fn saved_model_reloads_to_identical_predictions() {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let test = corpus.test.without_tags();
    let before = model.test(&test);

    let path = std::env::temp_dir().join("graphner-session-persistence.gner");
    save_model(&model, &path).expect("save");
    let loaded = load_model(&path).expect("load");
    let _ = std::fs::remove_file(&path);

    let after = loaded.test(&test);
    assert_eq!(before.predictions, after.predictions);
    assert_eq!(before.base_predictions, after.base_predictions);
    assert_eq!(loaded.num_labelled_vertices(), model.num_labelled_vertices());
    assert_eq!(loaded.transitions(), model.transitions());
}
