//! Cross-crate integration: the BC2GM annotation format and evaluator
//! compose correctly with the corpus generator.

use graphner::corpusgen::{generate, CorpusProfile};
use graphner::eval::evaluate;
use graphner::text::AnnotationSet;

#[test]
fn gold_scored_against_itself_is_perfect() {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    let gold = &corpus.test_gold;
    let eval = evaluate(gold, gold);
    assert_eq!(eval.precision(), 1.0);
    assert_eq!(eval.recall(), 1.0);
    assert_eq!(eval.f_score(), 1.0);
    assert_eq!(eval.totals.fp(), 0);
    assert_eq!(eval.totals.fn_(), 0);
}

#[test]
fn gene_file_serialization_round_trips_through_the_evaluator() {
    let corpus = generate(&CorpusProfile::aml().scaled(0.02));
    let file = corpus.test_gold.gene_file();
    let mut reparsed = AnnotationSet::new();
    reparsed.parse_gene_file(&file);
    assert_eq!(reparsed.num_primary(), corpus.test_gold.num_primary());
    let eval = evaluate(&reparsed, &corpus.test_gold);
    assert_eq!(eval.f_score(), 1.0, "round-tripped annotations must score perfectly");
}

#[test]
fn alternatives_make_scoring_lenient_but_never_stricter() {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    // score the gold's primaries against a gold set with alternatives
    // stripped: must still be perfect (alternatives only add leniency)
    let mut strict = corpus.test_gold.clone();
    strict.alternatives.clear();
    let eval = evaluate(&strict, &corpus.test_gold);
    assert_eq!(eval.f_score(), 1.0);
}

#[test]
fn offsets_in_generated_annotations_align_with_token_boundaries() {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    for sentence in &corpus.test.sentences {
        if let Some(anns) = corpus.test_gold.primary.get(&sentence.id) {
            for ann in anns {
                let m = sentence
                    .offsets_to_mention(ann.first, ann.last)
                    .unwrap_or_else(|| panic!("misaligned offsets in {}", sentence.id));
                assert_eq!(sentence.mention_text(&m), ann.text);
            }
        }
    }
}
