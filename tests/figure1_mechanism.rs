//! Cross-crate integration: the Figure 1 mechanism — graph propagation
//! pushes the `[tumor - 1]` vertex towards I via its I-labelled
//! neighbours, while the subclone distractor stays O.

use graphner::banner::NerConfig;
use graphner::core::{GraphNer, GraphNerConfig};
use graphner::crf::TrainConfig;
use graphner::text::{tokenize, BioTag, BioTag::*, Corpus, Sentence};

fn labelled(id: &str, text: &str, tags: Vec<BioTag>) -> Sentence {
    Sentence::labelled(id, tokenize(text), tags)
}

fn build_train() -> Corpus {
    let mut sentences = vec![
        labelled(
            "l0",
            "drug response was significant in wilms tumor - 3 positive patients .",
            vec![O, O, O, O, O, B, I, I, I, O, O, O],
        ),
        labelled(
            "l1",
            "we observed the following mutations in wilms tumor - 3 .",
            vec![O, O, O, O, O, O, B, I, I, I, O],
        ),
        labelled("l2", "expression of wilms tumor - 5 was low .", vec![O, O, B, I, I, I, O, O, O]),
        labelled(
            "l3",
            "we did not observe this mutation in the patient ' s tumor - 9 subclone .",
            vec![O; 16],
        ),
        labelled("l4", "this mutation was absent in the tumor - 7 subclone .", vec![O; 11]),
        labelled("l5", "no mutation was found .", vec![O; 5]),
    ];
    for k in 0..3 {
        for s in sentences.clone() {
            let mut s2 = s.clone();
            s2.id = format!("{}r{k}", s.id);
            sentences.push(s2);
        }
    }
    Corpus::from_sentences(sentences)
}

#[test]
fn tumor_dash_one_is_corrected_to_inside() {
    let cfg = NerConfig {
        train: TrainConfig { max_iterations: 100, ..Default::default() },
        ..Default::default()
    };
    let (model, _) = GraphNer::train(&build_train(), &cfg, None, GraphNerConfig::default());

    let test = Corpus::from_sentences(vec![
        Sentence::unlabelled("u0", tokenize("mutations were found in wilms tumor - 1 .")),
        Sentence::unlabelled(
            "u1",
            tokenize("we did not observe this mutation in the patient ' s tumor - 2 subclone ."),
        ),
    ]);
    let out = model.test(&test);

    // the dash inside the unseen gene variant "wilms tumor - 1"
    let dash0 = test.sentences[0].tokens.iter().position(|t| t == "-").unwrap();
    assert_eq!(out.predictions[0][dash0], I, "gene-internal dash: {:?}", out.predictions[0]);
    // the whole mention is recovered
    assert_eq!(&out.predictions[0][4..8], &[B, I, I, I]);

    // the distractor's dash stays outside
    let dash1 = test.sentences[1].tokens.iter().rposition(|t| t == "-").unwrap();
    assert_eq!(out.predictions[1][dash1], O, "subclone dash: {:?}", out.predictions[1]);
}

#[test]
fn reference_distributions_peak_where_gold_does() {
    let cfg = NerConfig {
        train: TrainConfig { max_iterations: 40, ..Default::default() },
        ..Default::default()
    };
    let (model, _) = GraphNer::train(&build_train(), &cfg, None, GraphNerConfig::default());
    // |V_l| equals the number of unique training 3-grams, all labelled
    assert!(model.num_labelled_vertices() > 30);
}
