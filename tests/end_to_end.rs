//! Cross-crate integration: the full GraphNER pipeline on seeded
//! synthetic corpora.

use graphner::banner::NerConfig;
use graphner::core::{annotations_from_predictions, GraphNer, GraphNerConfig};
use graphner::corpusgen::{generate, CorpusProfile};
use graphner::crf::TrainConfig;
use graphner::eval::evaluate;

fn quick_cfg() -> NerConfig {
    NerConfig {
        train: TrainConfig { max_iterations: 80, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn graphner_is_competitive_with_base_crf_on_bc2gm_profile() {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.03));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let out = model.test(&corpus.test.without_tags());

    let base = evaluate(
        &annotations_from_predictions(&corpus.test, &out.base_predictions),
        &corpus.test_gold,
    );
    let graph =
        evaluate(&annotations_from_predictions(&corpus.test, &out.predictions), &corpus.test_gold);
    // both systems must be functional taggers
    assert!(base.f_score() > 0.7, "base F = {}", base.f_score());
    assert!(graph.f_score() > 0.7, "graph F = {}", graph.f_score());
    // GraphNER must not collapse relative to its base (the paper's
    // claim is improvement; at this tiny scale we assert no regression
    // beyond noise)
    assert!(
        graph.f_score() > base.f_score() - 0.03,
        "graph F {} fell far below base F {}",
        graph.f_score(),
        base.f_score()
    );
}

#[test]
fn aml_profile_scores_above_bc2gm_profile() {
    // the paper: "performance ... substantially higher for the AML
    // corpus relative to the BC2GM corpus"
    let f_of = |profile: CorpusProfile| {
        let corpus = generate(&profile.scaled(0.03));
        let (model, _) =
            GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
        let out = model.test(&corpus.test.without_tags());
        evaluate(&annotations_from_predictions(&corpus.test, &out.predictions), &corpus.test_gold)
            .f_score()
    };
    let bc2 = f_of(CorpusProfile::bc2gm());
    let aml = f_of(CorpusProfile::aml());
    assert!(aml > bc2, "AML F {aml} should exceed BC2GM F {bc2}");
}

#[test]
fn propagation_report_surfaces_through_test_output() {
    use graphner::graph::PropagationParams;
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());

    // the paper's sweep budget runs exactly as configured, and at 3
    // sweeps the Jacobi iteration has not yet reached the residual
    // tolerance — `converged` is an observation, not an early exit
    let out = model.test(&corpus.test.without_tags());
    assert_eq!(out.propagation_iterations, model.config().propagation.iterations);
    assert!(!out.converged, "3 sweeps should not reach the tolerance");

    // a generous budget drives the residual below CONVERGENCE_TOL
    let generous = model.reconfigured(GraphNerConfig {
        propagation: PropagationParams { iterations: 200, ..GraphNerConfig::default().propagation },
        ..GraphNerConfig::default()
    });
    let out = generous.test(&corpus.test.without_tags());
    assert_eq!(out.propagation_iterations, 200);
    assert!(out.converged, "200 sweeps should converge");
}

#[test]
fn pipeline_is_deterministic_under_fixed_seed() {
    let run = || {
        let corpus = generate(&CorpusProfile::bc2gm().scaled(0.02));
        let (model, _) =
            GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
        model.test(&corpus.test.without_tags()).predictions
    };
    assert_eq!(run(), run());
}

#[test]
fn graph_statistics_match_the_papers_shape() {
    let corpus = generate(&CorpusProfile::bc2gm().scaled(0.04));
    let (model, _) = GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
    let out = model.test(&corpus.test.without_tags());
    let s = &out.stats;
    // transductive setting: most vertices are labelled (paper: 77 %)
    assert!(s.pct_labelled > 0.5, "labelled {:.2}", s.pct_labelled);
    // positively labelled vertices are rare (paper: 8.5 %)
    assert!(s.pct_positive < 0.5 * s.pct_labelled);
    // out-degree bounded by K
    assert!(s.num_edges <= s.num_vertices * 10);
    // nearly weakly connected: the largest component dominates
    assert!(s.largest_component * 2 > s.num_vertices);
}

#[test]
fn aml_graph_has_fewer_positive_vertices_than_bc2gm() {
    // §III-D: 8.5 % positive (BC2GM) vs 1.75 % (AML)
    let positive_pct = |profile: CorpusProfile| {
        let corpus = generate(&profile.scaled(0.03));
        let (model, _) =
            GraphNer::train(&corpus.train, &quick_cfg(), None, GraphNerConfig::default());
        model.test(&corpus.test.without_tags()).stats.pct_positive
    };
    let bc2 = positive_pct(CorpusProfile::bc2gm());
    let aml = positive_pct(CorpusProfile::aml());
    assert!(aml < bc2, "AML positive {aml:.3} should be below BC2GM {bc2:.3}");
}
