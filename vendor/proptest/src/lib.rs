//! In-repo stand-in for `proptest`: a miniature property-testing
//! harness covering the API surface this workspace uses — the
//! `proptest!` macro, `Strategy` + `prop_map`, numeric-range / tuple /
//! string-pattern strategies, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real crate: a fixed number of cases per
//! property ([`CASES`]), no shrinking on failure (the failing values
//! are printed instead), and string patterns support only the
//! `[class]{m,n}` form actually used in this repo's tests. Case
//! generation is deterministic per test name, so failures reproduce.

/// Cases sampled per property.
pub const CASES: u32 = 128;

/// Deterministic rng used by the harness.
pub mod test_runner {
    /// SplitMix64 generator seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the property name.
        pub fn new(name: &str) -> TestRng {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for b in name.bytes() {
                state = (state ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`] trait and built-in strategy types.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<F, T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F, T> Strategy for Map<S, F>
    where
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// String pattern strategy: `[class]{m,n}` — a character class with
    /// `a-z`-style ranges and literal characters (a trailing `-` is a
    /// literal), repeated between `m` and `n` times.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_pattern(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    /// Parse `[class]{m,n}` into (alphabet, m, n). Panics on anything
    /// outside that grammar — extend here if a test needs more.
    fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let inner = pattern
            .strip_prefix('[')
            .and_then(|rest| rest.split_once(']'))
            .unwrap_or_else(|| panic!("unsupported pattern {pattern:?}: expected [class]{{m,n}}"));
        let (class, rep) = inner;
        let counts = rep
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .and_then(|r| r.split_once(','))
            .unwrap_or_else(|| panic!("unsupported repetition in pattern {pattern:?}"));
        let min: usize = counts.0.trim().parse().expect("bad min repeat");
        let max: usize = counts.1.trim().parse().expect("bad max repeat");
        assert!(min <= max, "bad repetition bounds in {pattern:?}");

        let chars: Vec<char> = class.chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            // `a-z` range, unless `-` is the final character (literal)
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "bad char range in {pattern:?}");
                for c in lo..=hi {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
        (alphabet, min, max)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with length drawn from `len` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` strategy: length in `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*` needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` for [`CASES`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::new(stringify!($name));
                for __proptest_case in 0..$crate::CASES {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &$strat,
                            &mut __proptest_rng,
                        );
                    )+
                    let _ = __proptest_case;
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property; failure reports the condition.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(
            n in 2usize..20,
            x in 0.5f64..1.5,
            pair in (0u32..5, 0.0f32..1.0),
        ) {
            prop_assert!((2..20).contains(&n));
            prop_assert!((0.5..1.5).contains(&x));
            prop_assert!(pair.0 < 5);
            prop_assert!((0.0..1.0).contains(&pair.1));
        }

        #[test]
        fn string_pattern_respects_class_and_length(s in "[ a-z0-9.'-]{0,12}") {
            prop_assert!(s.chars().count() <= 12);
            for c in s.chars() {
                prop_assert!(
                    c == ' ' || c == '.' || c == '\'' || c == '-'
                        || c.is_ascii_lowercase() || c.is_ascii_digit(),
                    "unexpected char {c:?}"
                );
            }
        }

        #[test]
        fn vec_and_prop_map_compose(
            v in prop::collection::vec(0usize..3, 1..24).prop_map(|v| {
                v.into_iter().map(|x| x * 2).collect::<Vec<_>>()
            }),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 24);
            prop_assert!(v.iter().all(|&x| x % 2 == 0 && x <= 4));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let sample = |name: &str| {
            let mut rng = TestRng::new(name);
            (0..10).map(|_| Strategy::sample(&(0u64..1000), &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(sample("alpha"), sample("alpha"));
        assert_ne!(sample("alpha"), sample("beta"));
    }
}
