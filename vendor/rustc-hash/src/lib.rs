//! In-repo stand-in for `rustc-hash`: the classic Fx multiply-rotate
//! hash with the `FxHashMap` / `FxHashSet` aliases the workspace uses.
//! Functionally equivalent to the real crate (a fast, non-cryptographic,
//! DoS-unsafe hasher); hash values are not guaranteed to match the
//! upstream implementation bit for bit.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant of the Fx hash (Firefox's hash function).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("a".to_string(), 1);
        m.insert("b".to_string(), 2);
        assert_eq!(m["a"], 1);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |s: &str| {
            let mut hasher = FxHasher::default();
            hasher.write(s.as_bytes());
            hasher.finish()
        };
        assert_eq!(h("gene"), h("gene"));
        assert_ne!(h("gene"), h("gens"));
    }
}
