//! In-repo stand-in for `rayon`: the exact parallel-iterator API
//! surface this workspace uses, executed on a real global worker pool.
//!
//! Every `par_iter` / `par_chunks` / `into_par_iter` call site keeps
//! its rayon shape (so swapping the real crate back in is a
//! Cargo.toml-only change), but unlike real rayon the execution is
//! *deterministic by construction*: inputs are split at chunk
//! boundaries that depend only on the input length (see
//! [`chunk_ranges`]), chunks run on whichever threads are free, and
//! per-chunk results are merged in chunk-index order. `map`, `zip`,
//! `enumerate` and `collect` therefore preserve order exactly, and
//! `reduce`/`sum` group their operands identically at any
//! `GRAPHNER_THREADS` setting — byte-identical results at 1, 2, or 64
//! threads.
//!
//! The two-layer design mirrors rayon's indexed producers:
//!
//! * a [`Source`] is random-access — it knows its length and can
//!   produce the item at any index once (slices, mutable slices,
//!   chunked slices, owned vectors, integer ranges, zips of sources);
//! * a [`Pipeline`] is the adaptor stack over a source (`map`,
//!   `map_init`, `filter`) driven by internal iteration over one
//!   contiguous index range at a time.
//!
//! `zip` and `enumerate` are deliberately only available directly on
//! sources (before any `map`), matching how real rayon restricts them
//! to indexed iterators — and matching every call site in this
//! workspace.
//!
//! `map_init` creates one scratch state per *chunk*, the pool analogue
//! of rayon's per-worker state: call sites must already tolerate reuse
//! across arbitrary item subsets, and a fresh state per chunk keeps the
//! output independent of the thread count.

use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::Range;

mod pool;

pub use pool::{chunk_ranges, pool_stats, PoolStats, IDLE_BUCKETS, IDLE_BUCKET_EDGES_US, THREADS_ENV};

/// Number of threads parallel work runs on: the pool's workers plus
/// the submitting thread (`GRAPHNER_THREADS`, defaulting to
/// [`std::thread::available_parallelism`]).
pub fn current_num_threads() -> usize {
    pool::global().size()
}

// ---------------------------------------------------------------------
// Sources: random-access item producers.
// ---------------------------------------------------------------------

/// A random-access producer behind a parallel iterator.
///
/// # Safety
///
/// Implementations may move items out or hand out disjoint `&mut`
/// borrows, so the contract callers must uphold is: `get(i)` is called
/// only with `i < len()`, and each index is consumed **at most once**
/// across all threads. [`pool::drive`] guarantees this by handing out
/// disjoint index ranges.
pub unsafe trait Source: Sync {
    /// Item produced per index.
    type Item;

    /// Number of items.
    fn len(&self) -> usize;

    /// Produce item `i`.
    ///
    /// # Safety
    ///
    /// `i < len()`, and each index is consumed at most once.
    unsafe fn get(&self, i: usize) -> Self::Item;
}

/// Shared-reference source over a slice.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

// SAFETY: hands out `&T` by index — plain shared access.
unsafe impl<'a, T: Sync> Source for SliceSource<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    // SAFETY: caller passes `i < len()`; shared borrows may be handed
    // out any number of times, so the at-most-once clause is vacuous.
    unsafe fn get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Exclusive-reference source over a slice: disjoint indices yield
/// disjoint `&mut` borrows, which the [`Source`] contract guarantees.
pub struct SliceMutSource<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: `get` hands each element's `&mut` to exactly one consumer
// (the at-most-once index contract), so sharing the source across
// threads shares nothing but disjoint `T: Send` borrows.
unsafe impl<T: Send> Send for SliceMutSource<'_, T> {}
unsafe impl<T: Send> Sync for SliceMutSource<'_, T> {}

// SAFETY: the at-most-once index contract means each `&mut` borrow is
// created exactly once, so no aliasing `&mut` can exist.
unsafe impl<'a, T: Send> Source for SliceMutSource<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    // SAFETY: bounds re-checked here; disjointness is the caller's
    // at-most-once contract.
    unsafe fn get(&self, i: usize) -> &'a mut T {
        assert!(i < self.len);
        // SAFETY: in-bounds, and disjoint per the index contract.
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Source of `&[T]` windows of at most `size` items.
pub struct ChunksSource<'a, T> {
    slice: &'a [T],
    size: usize,
}

// SAFETY: hands out shared subslices — plain shared access.
unsafe impl<'a, T: Sync> Source for ChunksSource<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    // SAFETY: caller passes `i < len()`; the subslice arithmetic below
    // clamps to the slice end, so indexing cannot go out of bounds.
    unsafe fn get(&self, i: usize) -> &'a [T] {
        let start = i * self.size;
        let end = (start + self.size).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// Owning source: moves items out of a vector by index.
pub struct VecSource<T> {
    buf: ManuallyDrop<Vec<T>>,
}

// SAFETY: items are only ever *moved out*, each at most once, so no
// `&T` is ever shared between threads; `T: Send` covers the move.
unsafe impl<T: Send> Send for VecSource<T> {}
unsafe impl<T: Send> Sync for VecSource<T> {}

// SAFETY: `get` moves each element out at most once (caller contract),
// and `Drop` never touches moved-out slots.
unsafe impl<T: Send> Source for VecSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.buf.len()
    }

    // SAFETY: bounds re-checked here; the at-most-once contract makes
    // the `ptr::read` below a move rather than a duplication.
    unsafe fn get(&self, i: usize) -> T {
        assert!(i < self.buf.len());
        // SAFETY: in-bounds, and the at-most-once contract makes this
        // a move, not a duplication.
        unsafe { std::ptr::read(self.buf.as_ptr().add(i)) }
    }
}

impl<T> Drop for VecSource<T> {
    fn drop(&mut self) {
        // Free the backing buffer without dropping elements: consumed
        // items were moved out by `get`, so dropping them here would
        // double-drop. Items never consumed (a cancelled job's tail)
        // leak, which is safe.
        // SAFETY: `buf` is not used again after `take`.
        let mut vec = unsafe { ManuallyDrop::take(&mut self.buf) };
        // SAFETY: 0 ≤ capacity, and no initialized elements remain
        // under our management.
        unsafe { vec.set_len(0) };
    }
}

/// Integer-range source.
pub struct RangeSource<T> {
    start: T,
    len: usize,
}

macro_rules! range_source {
    ($($t:ty),*) => {$(
        // SAFETY: produces values, shares nothing.
        unsafe impl Source for RangeSource<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.len
            }

            // SAFETY: computes a value from `start + i`; no memory is
            // touched, so the index contract is vacuous.
            unsafe fn get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }
    )*};
}

range_source!(usize, u32, u64);

/// Lock-step pair of sources, truncated to the shorter one.
pub struct ZipSource<A, B> {
    a: A,
    b: B,
}

// SAFETY: forwards the index contract to both inner sources.
unsafe impl<A: Source, B: Source> Source for ZipSource<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    // SAFETY: forwards the caller's contract to both inner sources;
    // `len()` is the min of the two, so `i` is in range for both.
    unsafe fn get(&self, i: usize) -> (A::Item, B::Item) {
        // SAFETY: forwarded contract; `i` is in range for both.
        unsafe { (self.a.get(i), self.b.get(i)) }
    }
}

/// Source pairing each item with its index.
pub struct EnumerateSource<S> {
    inner: S,
}

// SAFETY: forwards the index contract to the inner source.
unsafe impl<S: Source> Source for EnumerateSource<S> {
    type Item = (usize, S::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    // SAFETY: forwards the caller's contract unchanged to the inner
    // source; `len()` is the inner length.
    unsafe fn get(&self, i: usize) -> (usize, S::Item) {
        // SAFETY: forwarded contract.
        (i, unsafe { self.inner.get(i) })
    }
}

// ---------------------------------------------------------------------
// Pipelines: adaptor stacks driven by internal iteration.
// ---------------------------------------------------------------------

/// An adaptor stack over a [`Source`], executed one contiguous index
/// range at a time via internal iteration.
pub trait Pipeline: Sync {
    /// Item flowing out of the stack.
    type Item;

    /// Number of *source* indices (an upper bound on emitted items —
    /// `filter` emits fewer).
    fn len(&self) -> usize;

    /// Feed every item whose source index lies in `range` into `sink`,
    /// in ascending index order.
    fn feed(&self, range: Range<usize>, sink: &mut dyn FnMut(Self::Item));
}

/// The base of every stack: a bare [`Source`].
pub struct SourcePipe<S> {
    source: S,
}

impl<S: Source> Pipeline for SourcePipe<S> {
    type Item = S::Item;

    fn len(&self) -> usize {
        self.source.len()
    }

    fn feed(&self, range: Range<usize>, sink: &mut dyn FnMut(S::Item)) {
        for i in range {
            // SAFETY: the driver hands out disjoint in-bounds ranges,
            // so each index is consumed exactly once.
            sink(unsafe { self.source.get(i) });
        }
    }
}

/// `map` stage.
pub struct MapPipe<P, F> {
    inner: P,
    f: F,
}

impl<P, F, R> Pipeline for MapPipe<P, F>
where
    P: Pipeline,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn feed(&self, range: Range<usize>, sink: &mut dyn FnMut(R)) {
        self.inner.feed(range, &mut |item| sink((self.f)(item)));
    }
}

/// `map_init` stage: scratch state created once per chunk.
pub struct MapInitPipe<P, INIT, F> {
    inner: P,
    init: INIT,
    f: F,
}

impl<P, INIT, T, F, R> Pipeline for MapInitPipe<P, INIT, F>
where
    P: Pipeline,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, P::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn feed(&self, range: Range<usize>, sink: &mut dyn FnMut(R)) {
        let mut state = (self.init)();
        self.inner.feed(range, &mut |item| sink((self.f)(&mut state, item)));
    }
}

/// `filter` stage.
pub struct FilterPipe<P, F> {
    inner: P,
    predicate: F,
}

impl<P, F> Pipeline for FilterPipe<P, F>
where
    P: Pipeline,
    F: Fn(&P::Item) -> bool + Sync,
{
    type Item = P::Item;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn feed(&self, range: Range<usize>, sink: &mut dyn FnMut(P::Item)) {
        self.inner.feed(range, &mut |item| {
            if (self.predicate)(&item) {
                sink(item);
            }
        });
    }
}

// ---------------------------------------------------------------------
// The public parallel iterator.
// ---------------------------------------------------------------------

/// A parallel iterator: a pipeline awaiting a terminal operation.
pub struct ParIter<P> {
    pipeline: P,
}

impl<P: Pipeline> ParIter<P> {
    /// Map each item.
    pub fn map<F, R>(self, f: F) -> ParIter<MapPipe<P, F>>
    where
        F: Fn(P::Item) -> R + Sync,
    {
        ParIter { pipeline: MapPipe { inner: self.pipeline, f } }
    }

    /// Map each item with scratch state created once per chunk (the
    /// pool analogue of rayon's per-worker init).
    pub fn map_init<INIT, T, F, R>(self, init: INIT, f: F) -> ParIter<MapInitPipe<P, INIT, F>>
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, P::Item) -> R + Sync,
    {
        ParIter { pipeline: MapInitPipe { inner: self.pipeline, init, f } }
    }

    /// Filter items.
    pub fn filter<F>(self, predicate: F) -> ParIter<FilterPipe<P, F>>
    where
        F: Fn(&P::Item) -> bool + Sync,
    {
        ParIter { pipeline: FilterPipe { inner: self.pipeline, predicate } }
    }

    /// Run a side effect for each item. Items stay on the thread that
    /// produced them.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync,
    {
        pool::drive(self.pipeline.len(), |range| {
            self.pipeline.feed(range, &mut |item| f(item));
        });
    }

    /// Collect into any `FromIterator` collection, preserving source
    /// order exactly (chunks are concatenated in index order).
    pub fn collect<C>(self) -> C
    where
        P::Item: Send,
        C: FromIterator<P::Item>,
    {
        let chunks = pool::drive(self.pipeline.len(), |range| {
            let mut out = Vec::with_capacity(range.len());
            self.pipeline.feed(range, &mut |item| out.push(item));
            out
        });
        chunks.into_iter().flatten().collect()
    }

    /// Fold from `identity()` with `op` (rayon's reduce signature).
    /// Each chunk folds sequentially from its own identity, then the
    /// per-chunk results fold in chunk-index order — the grouping is a
    /// pure function of the input length, never of the thread count.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        P::Item: Send,
        ID: Fn() -> P::Item + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        let chunks = pool::drive(self.pipeline.len(), |range| {
            let mut acc = Some(identity());
            self.pipeline.feed(range, &mut |item| {
                let prev = acc.take().unwrap_or_else(&identity);
                acc = Some(op(prev, item));
            });
            acc.unwrap_or_else(&identity)
        });
        chunks.into_iter().fold(identity(), &op)
    }

    /// Sum the items (per-chunk sums, merged in chunk-index order).
    pub fn sum<S>(self) -> S
    where
        P::Item: Send,
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        let partials = pool::drive(self.pipeline.len(), |range| {
            let mut items = Vec::with_capacity(range.len());
            self.pipeline.feed(range, &mut |item| items.push(item));
            items.into_iter().sum::<S>()
        });
        partials.into_iter().sum()
    }

    /// Number of items emitted.
    pub fn count(self) -> usize {
        let partials = pool::drive(self.pipeline.len(), |range| {
            let mut n = 0usize;
            self.pipeline.feed(range, &mut |_| n += 1);
            n
        });
        partials.into_iter().sum()
    }
}

/// `zip` and `enumerate` need random access, so — as in real rayon,
/// where they require indexed iterators — they are only available on a
/// bare source, before any `map`/`filter` stage.
impl<S: Source> ParIter<SourcePipe<S>> {
    /// Pair items with their index.
    pub fn enumerate(self) -> ParIter<SourcePipe<EnumerateSource<S>>> {
        ParIter { pipeline: SourcePipe { source: EnumerateSource { inner: self.pipeline.source } } }
    }

    /// Zip with another source-level parallel iterator, truncating to
    /// the shorter of the two.
    pub fn zip<S2: Source>(
        self,
        other: ParIter<SourcePipe<S2>>,
    ) -> ParIter<SourcePipe<ZipSource<S, S2>>> {
        ParIter {
            pipeline: SourcePipe {
                source: ZipSource { a: self.pipeline.source, b: other.pipeline.source },
            },
        }
    }
}

// ---------------------------------------------------------------------
// Entry-point traits.
// ---------------------------------------------------------------------

/// `.par_iter()` / `.par_chunks()` on slices.
pub trait ParallelSliceExt<T: Sync> {
    /// Iterate shared references.
    fn par_iter(&self) -> ParIter<SourcePipe<SliceSource<'_, T>>>;

    /// Iterate chunks of at most `size` items (`size > 0`).
    fn par_chunks(&self, size: usize) -> ParIter<SourcePipe<ChunksSource<'_, T>>>;
}

/// `.par_iter_mut()` on slices.
pub trait ParallelSliceMutExt<T: Send> {
    /// Iterate exclusive references.
    fn par_iter_mut(&mut self) -> ParIter<SourcePipe<SliceMutSource<'_, T>>>;
}

impl<T: Sync> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<SourcePipe<SliceSource<'_, T>>> {
        ParIter { pipeline: SourcePipe { source: SliceSource { slice: self } } }
    }

    fn par_chunks(&self, size: usize) -> ParIter<SourcePipe<ChunksSource<'_, T>>> {
        assert!(size > 0, "par_chunks requires a positive chunk size");
        ParIter { pipeline: SourcePipe { source: ChunksSource { slice: self, size } } }
    }
}

impl<T: Send> ParallelSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SourcePipe<SliceMutSource<'_, T>>> {
        let len = self.len();
        let ptr = self.as_mut_ptr();
        ParIter { pipeline: SourcePipe { source: SliceMutSource { ptr, len, _marker: PhantomData } } }
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying random-access source.
    type Source: Source<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<SourcePipe<Self::Source>>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Source = VecSource<T>;

    fn into_par_iter(self) -> ParIter<SourcePipe<VecSource<T>>> {
        ParIter { pipeline: SourcePipe { source: VecSource { buf: ManuallyDrop::new(self) } } }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Source = RangeSource<$t>;

            fn into_par_iter(self) -> ParIter<SourcePipe<RangeSource<$t>>> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParIter {
                    pipeline: SourcePipe { source: RangeSource { start: self.start, len } },
                }
            }
        }
    )*};
}

range_into_par_iter!(usize, u32, u64);

/// The traits a `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceExt, ParallelSliceMutExt};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn reduce_with_identity() {
        let m: f64 = vec![1.0f64, 5.0, 3.0].par_iter().map(|&x| x).reduce(|| 0.0, f64::max);
        assert!((m - 5.0).abs() < 1e-12);
    }

    #[test]
    fn chunks_and_zip_and_enumerate() {
        let data = [1, 2, 3, 4, 5];
        let n: usize = data.par_chunks(2).map(|c| c.len()).sum();
        assert_eq!(n, 5);
        let mut out = vec![0; 3];
        out.par_iter_mut().enumerate().for_each(|(i, v)| *v = i);
        assert_eq!(out, vec![0, 1, 2]);
        let pairs: Vec<(usize, i32)> =
            (0..3usize).into_par_iter().zip(vec![7, 8, 9].into_par_iter()).collect();
        assert_eq!(pairs, vec![(0, 7), (1, 8), (2, 9)]);
    }

    #[test]
    fn map_init_state_is_per_chunk() {
        // scratch persists across the items of one chunk and starts
        // fresh at every chunk boundary, independent of thread count
        let len = 150usize;
        let got: Vec<usize> = (0..len)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                scratch.len()
            })
            .collect();
        let mut expected = Vec::with_capacity(len);
        for range in crate::chunk_ranges(len) {
            for (offset, _) in range.enumerate() {
                expected.push(offset + 1);
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn large_map_collect_preserves_order() {
        let n = 10_000usize;
        let squares: Vec<usize> = (0..n).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), n);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn filter_then_count() {
        let evens = (0..1000u64).into_par_iter().filter(|x| x % 2 == 0).count();
        assert_eq!(evens, 500);
    }

    #[test]
    fn panic_in_chunk_propagates_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            (0..256usize)
                .into_par_iter()
                .map(|i| if i == 101 { panic!("chunk panic") } else { i })
                .collect::<Vec<_>>()
        });
        assert!(caught.is_err());
        // the pool keeps working after a propagated panic
        let sum: usize = (0..100usize).into_par_iter().map(|i| i).sum();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn nested_parallelism_makes_progress() {
        let totals: Vec<u64> =
            (0..8u64).into_par_iter().map(|i| (0..100u64).into_par_iter().map(|j| i * j).sum()).collect();
        for (i, &t) in totals.iter().enumerate() {
            assert_eq!(t, i as u64 * 4950);
        }
    }

    #[test]
    fn pool_stats_delta_brackets_a_job() {
        let before = crate::pool_stats();
        let _: u64 = (0..512u64).into_par_iter().map(|i| i).sum();
        let after = crate::pool_stats();
        let d = after.delta(&before);
        assert!(d.jobs_submitted >= 1);
        assert!(d.chunks_executed >= 1);
        assert_eq!(d.threads, after.threads);
        // swapped operands saturate to zero instead of wrapping
        let swapped = before.delta(&after);
        assert_eq!(swapped.jobs_submitted, 0);
        assert_eq!(swapped.chunks_executed, 0);
    }

    #[test]
    fn chunk_ranges_partition_in_order() {
        for len in [0usize, 1, 2, 63, 64, 65, 1000] {
            let ranges = crate::chunk_ranges(len);
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end >= r.start);
                next = r.end;
            }
            assert_eq!(next, len);
            assert!(ranges.len() <= 64);
        }
    }
}
