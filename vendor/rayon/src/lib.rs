//! In-repo stand-in for `rayon`: the exact parallel-iterator API surface
//! this workspace uses, executed *sequentially* on the calling thread.
//!
//! Every `par_iter` / `par_chunks` / `into_par_iter` call site keeps its
//! rayon shape (so swapping the real crate back in is a Cargo.toml-only
//! change), but work is a plain iterator pipeline. Results are identical
//! to real rayon for the combinators used here because the workspace
//! only relies on order-preserving operations (`map`, `zip`, `collect`)
//! and associative-commutative reductions (`reduce` with `f64::max`,
//! tuple sums).

use std::ops::Range;

/// Number of worker threads. The stand-in executes sequentially, so 1.
pub fn current_num_threads() -> usize {
    1
}

/// A "parallel" iterator: a thin wrapper over a sequential iterator.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Map each item.
    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter { inner: self.inner.map(f) }
    }

    /// Map each item with per-"thread" scratch state (created once here,
    /// since there is a single thread).
    pub fn map_init<INIT, T, F, R>(
        self,
        init: INIT,
        mut f: F,
    ) -> ParIter<impl Iterator<Item = R>>
    where
        INIT: Fn() -> T,
        F: FnMut(&mut T, I::Item) -> R,
    {
        let mut state = init();
        ParIter { inner: self.inner.map(move |item| f(&mut state, item)) }
    }

    /// Pair items with their index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter { inner: self.inner.enumerate() }
    }

    /// Zip with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter { inner: self.inner.zip(other.inner) }
    }

    /// Filter items.
    pub fn filter<P>(self, predicate: P) -> ParIter<std::iter::Filter<I, P>>
    where
        P: FnMut(&I::Item) -> bool,
    {
        ParIter { inner: self.inner.filter(predicate) }
    }

    /// Run a side effect for each item.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.inner.for_each(f);
    }

    /// Collect into any `FromIterator` collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Fold from `identity()` with `op` (rayon's reduce signature).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.inner.count()
    }
}

/// `.par_iter()` / `.par_iter_mut()` / `.par_chunks()` on slices.
pub trait ParallelSliceExt<T> {
    /// Iterate shared references.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Iterate chunks of at most `size` items.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

/// `.par_iter_mut()` on slices.
pub trait ParallelSliceMutExt<T> {
    /// Iterate exclusive references.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
}

impl<T> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter { inner: self.iter() }
    }

    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter { inner: self.chunks(size) }
    }
}

impl<T> ParallelSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter { inner: self.iter_mut() }
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self.into_iter() }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = Range<usize>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    type Iter = Range<u32>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    type Iter = Range<u64>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, ParallelSliceExt, ParallelSliceMutExt,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn reduce_with_identity() {
        let m: f64 = vec![1.0f64, 5.0, 3.0]
            .par_iter()
            .map(|&x| x)
            .reduce(|| 0.0, f64::max);
        assert!((m - 5.0).abs() < 1e-12);
    }

    #[test]
    fn chunks_and_zip_and_enumerate() {
        let data = [1, 2, 3, 4, 5];
        let n: usize = data.par_chunks(2).map(|c| c.len()).sum();
        assert_eq!(n, 5);
        let mut out = vec![0; 3];
        out.par_iter_mut().enumerate().for_each(|(i, v)| *v = i);
        assert_eq!(out, vec![0, 1, 2]);
        let pairs: Vec<(usize, i32)> =
            (0..3usize).into_par_iter().zip(vec![7, 8, 9].into_par_iter()).collect();
        assert_eq!(pairs, vec![(0, 7), (1, 8), (2, 9)]);
    }

    #[test]
    fn map_init_reuses_state() {
        let results: Vec<usize> = (0..4usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                scratch.len()
            })
            .collect();
        // single "thread": scratch persists across items
        assert_eq!(results, vec![1, 2, 3, 4]);
    }
}
