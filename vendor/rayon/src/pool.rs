//! The global worker pool behind the parallel iterators.
//!
//! # Shape
//!
//! A lazily initialized set of `std::thread` workers shared by every
//! parallel call in the process. The pool size comes from the
//! `GRAPHNER_THREADS` environment variable (read once, at first use),
//! defaulting to [`std::thread::available_parallelism`]. With size 1 no
//! worker threads are spawned at all and every job runs inline on the
//! calling thread.
//!
//! A *job* is one terminal parallel operation (`collect`, `for_each`,
//! `reduce`, …) split into up to [`MAX_CHUNKS`] contiguous index
//! ranges. The submitting thread pushes the job onto a shared queue,
//! wakes the workers, and then participates: it claims chunks exactly
//! like a worker until none remain, then blocks on the job's completion
//! latch. Workers that finish early steal chunks of whatever job is at
//! the front of the queue, so a job is never stuck waiting for a
//! sleeping thread.
//!
//! # Determinism
//!
//! Chunk *boundaries* are a pure function of the input length — see
//! [`chunk_ranges`] — and terminal operations merge per-chunk results
//! in chunk-index order. Which thread executes a chunk, and in what
//! temporal order chunks run, is scheduling noise that never reaches
//! the result: outputs are byte-identical at any `GRAPHNER_THREADS`
//! setting, including 1. (This is also why the boundaries must *not*
//! depend on the worker count: a float reduction regroups at chunk
//! edges, so thread-count-dependent edges would make training bits a
//! function of the machine.)
//!
//! # Panic safety
//!
//! A panicking chunk marks the job cancelled (remaining chunks are
//! skipped), the first panic payload is stored, every claimed chunk
//! still counts toward the completion latch, and the submitting thread
//! re-raises the payload after the latch opens — by which point no
//! other thread can touch the job's borrowed task again.

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Environment variable fixing the pool size (a positive integer).
pub const THREADS_ENV: &str = "GRAPHNER_THREADS";

/// Upper bound on the number of chunks a job is split into. Small
/// enough that per-chunk bookkeeping is negligible, large enough that
/// any plausible worker count keeps busy.
const MAX_CHUNKS: usize = 64;

/// Number of idle-wait histogram buckets (five bounded + overflow).
pub const IDLE_BUCKETS: usize = 6;

/// Upper edges of the bounded idle-wait buckets, in microseconds; the
/// final bucket of [`PoolStats::idle_waits`] is unbounded.
pub const IDLE_BUCKET_EDGES_US: [u64; IDLE_BUCKETS - 1] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// Deterministic chunk boundaries for an input of `len` items: at most
/// [`MAX_CHUNKS`] contiguous ranges, sizes differing by at most one,
/// covering `0..len` in order. Depends on nothing but `len`.
pub fn chunk_ranges(len: usize) -> Vec<Range<usize>> {
    let chunks = len.min(MAX_CHUNKS);
    (0..chunks).map(|i| (i * len / chunks)..((i + 1) * len / chunks)).collect()
}

/// Poison-tolerant lock: a panic inside a chunk is propagated by the
/// pool itself, so a poisoned mutex carries no extra information here.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Lifetime-erased pointer to a job's chunk task. Only dereferenced by
/// chunk executions, all of which complete before [`Pool::run`]
/// returns — the borrow it was erased from outlives every dereference.
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared execution from many threads is
// its purpose) and is only used within the submitting borrow's
// lifetime, as argued on `TaskRef` and enforced by the job latch.
unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

/// One terminal parallel operation, shared between the submitting
/// thread and the workers via `Arc` (so queue stragglers holding a
/// reference after completion touch only their own metadata).
struct Job {
    task: TaskRef,
    num_chunks: usize,
    /// Next chunk index to claim; claims at or past `num_chunks` are
    /// exhausted-job signals, not work.
    next: AtomicUsize,
    /// Chunks not yet finished executing (or being skipped).
    pending: AtomicUsize,
    /// Set by the first panicking chunk: remaining chunks are skipped.
    cancelled: AtomicBool,
    /// First panic payload, re-raised by the submitting thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completion latch the submitting thread blocks on.
    done: Mutex<bool>,
    latch: Condvar,
}

impl Job {
    /// Execute (or, when cancelled, skip) one claimed chunk and credit
    /// it to the completion latch.
    fn run_chunk(&self, chunk: usize, on_worker: bool, stats: &Stats) {
        if !self.cancelled.load(Ordering::Acquire) {
            // SAFETY: see `TaskRef` — the submitting borrow is alive
            // until the latch this execution precedes.
            let task = unsafe { &*self.task.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(chunk))) {
                self.cancelled.store(true, Ordering::Release);
                let mut slot = lock(&self.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        stats.chunks.fetch_add(1, Ordering::Relaxed);
        if on_worker {
            stats.chunks_on_workers.fetch_add(1, Ordering::Relaxed);
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            *lock(&self.done) = true;
            self.latch.notify_all();
        }
    }
}

/// Pool-lifetime scheduling counters, exposed via [`pool_stats`].
#[derive(Default)]
struct Stats {
    jobs: AtomicU64,
    chunks: AtomicU64,
    chunks_on_workers: AtomicU64,
    idle_waits: [AtomicU64; IDLE_BUCKETS],
}

impl Stats {
    fn record_idle(&self, waited: std::time::Duration) {
        let us = waited.as_micros() as u64;
        let bucket = IDLE_BUCKET_EDGES_US
            .iter()
            .position(|&edge| us < edge)
            .unwrap_or(IDLE_BUCKETS - 1);
        self.idle_waits[bucket].fetch_add(1, Ordering::Relaxed);
    }
}

/// Read-only snapshot of the pool's configuration and lifetime
/// counters, for export into the workspace metric registry.
#[derive(Clone, Debug)]
pub struct PoolStats {
    /// Concurrent threads a job can run on (workers + submitter).
    pub threads: usize,
    /// Terminal parallel operations submitted so far.
    pub jobs_submitted: u64,
    /// Chunks executed (or skipped after cancellation) so far.
    pub chunks_executed: u64,
    /// Chunks executed by pool workers rather than the submitting
    /// thread — the "stolen" share of the work.
    pub chunks_on_workers: u64,
    /// Worker idle-wait episodes, bucketed per
    /// [`IDLE_BUCKET_EDGES_US`] with a final unbounded bucket.
    pub idle_waits: [u64; IDLE_BUCKETS],
}

impl PoolStats {
    /// Counter advance from `earlier` to `self` (same `threads`).
    /// Lets callers attribute pool activity to one bracketed region:
    /// snapshot before, snapshot after, diff. Saturating, so a stale
    /// or swapped pair reads as zeros rather than wrapping.
    pub fn delta(&self, earlier: &PoolStats) -> PoolStats {
        let mut idle_waits = [0u64; IDLE_BUCKETS];
        for (out, (now, then)) in
            idle_waits.iter_mut().zip(self.idle_waits.iter().zip(&earlier.idle_waits))
        {
            *out = now.saturating_sub(*then);
        }
        PoolStats {
            threads: self.threads,
            jobs_submitted: self.jobs_submitted.saturating_sub(earlier.jobs_submitted),
            chunks_executed: self.chunks_executed.saturating_sub(earlier.chunks_executed),
            chunks_on_workers: self.chunks_on_workers.saturating_sub(earlier.chunks_on_workers),
            idle_waits,
        }
    }
}

/// Snapshot the global pool's configuration and counters. Initializes
/// the pool if no parallel work has run yet.
pub fn pool_stats() -> PoolStats {
    let pool = global();
    let stats = &pool.shared.stats;
    let mut idle_waits = [0u64; IDLE_BUCKETS];
    for (out, bucket) in idle_waits.iter_mut().zip(&stats.idle_waits) {
        *out = bucket.load(Ordering::Relaxed);
    }
    PoolStats {
        threads: pool.size,
        jobs_submitted: stats.jobs.load(Ordering::Relaxed),
        chunks_executed: stats.chunks.load(Ordering::Relaxed),
        chunks_on_workers: stats.chunks_on_workers.load(Ordering::Relaxed),
        idle_waits,
    }
}

/// State shared between the submitting threads and the workers.
struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_available: Condvar,
    stats: Stats,
}

/// The worker pool: spawned threads plus the shared queue.
pub(crate) struct Pool {
    size: usize,
    shared: Arc<Shared>,
}

fn configured_size() -> usize {
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The process-wide pool, created on first use.
pub(crate) fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

impl Pool {
    fn new() -> Pool {
        let size = configured_size();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            stats: Stats::default(),
        });
        // size − 1 workers: the submitting thread is the size-th
        // executor. Spawn failure just degrades concurrency — the
        // submitter alone always completes every job.
        for i in 1..size {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("graphner-rayon-{i}"))
                .spawn(move || worker_loop(&shared));
            if spawned.is_err() {
                break;
            }
        }
        Pool { size, shared }
    }

    pub(crate) fn size(&self) -> usize {
        self.size
    }

    /// Run `task(c)` for every chunk index `c` in `0..num_chunks`
    /// across the pool, blocking until all have completed. A panic in
    /// any chunk cancels the rest and is re-raised here.
    pub(crate) fn run<'scope>(&self, num_chunks: usize, task: &'scope (dyn Fn(usize) + Sync)) {
        debug_assert!(num_chunks > 0);
        self.shared.stats.jobs.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `run` does not return until the latch below has
        // opened, which happens only after the final dereference of
        // this pointer — the erased borrow outlives every use.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&'scope (dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                task,
            )
        };
        let task = TaskRef(erased as *const (dyn Fn(usize) + Sync));
        let job = Arc::new(Job {
            task,
            num_chunks,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(num_chunks),
            cancelled: AtomicBool::new(false),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            latch: Condvar::new(),
        });
        lock(&self.shared.queue).push_back(Arc::clone(&job));
        self.shared.work_available.notify_all();

        // Participate like a worker until the job has no unclaimed
        // chunks left (nested jobs therefore always make progress even
        // if every pool worker is busy elsewhere).
        loop {
            let chunk = job.next.fetch_add(1, Ordering::SeqCst);
            if chunk >= num_chunks {
                break;
            }
            job.run_chunk(chunk, false, &self.shared.stats);
        }

        let mut done = lock(&job.done);
        while !*done {
            done = job.latch.wait(done).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        drop(done);

        let payload = lock(&job.panic).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = next_job(shared);
        loop {
            let chunk = job.next.fetch_add(1, Ordering::SeqCst);
            if chunk >= job.num_chunks {
                break;
            }
            job.run_chunk(chunk, true, &shared.stats);
        }
    }
}

/// Block until the queue has a job with unclaimed chunks, popping
/// exhausted jobs off the front on the way.
fn next_job(shared: &Shared) -> Arc<Job> {
    let mut queue = lock(&shared.queue);
    loop {
        while queue
            .front()
            .is_some_and(|job| job.next.load(Ordering::SeqCst) >= job.num_chunks)
        {
            queue.pop_front();
        }
        if let Some(job) = queue.front() {
            return Arc::clone(job);
        }
        let idle_from = Instant::now();
        queue = shared
            .work_available
            .wait(queue)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        shared.stats.record_idle(idle_from.elapsed());
    }
}

/// Raw slot-array pointer the chunk task writes results through.
/// Chunk indices are claimed at most once, so writes are disjoint; the
/// job latch sequences them before the submitting thread's reads.
struct SlotWriter<T>(*mut T);

impl<T> SlotWriter<T> {
    /// Accessor rather than a public field so closures capture the
    /// whole (Sync) wrapper, not the raw pointer inside it.
    fn slot(&self, i: usize) -> *mut T {
        // Safety note: callers stay in bounds; see `SlotWriter`.
        self.0.wrapping_add(i)
    }
}

// SAFETY: disjoint-index writes of `Send` values, ordered against the
// reader by the job latch (see `SlotWriter`).
unsafe impl<T: Send> Send for SlotWriter<T> {}
unsafe impl<T: Send> Sync for SlotWriter<T> {}

/// Evaluate `run_range` over the deterministic [`chunk_ranges`] of
/// `0..len` — in parallel when the pool has more than one thread — and
/// return the per-chunk results in chunk order.
pub(crate) fn drive<R, F>(len: usize, run_range: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let ranges = chunk_ranges(len);
    let pool = global();
    if pool.size() == 1 || ranges.len() == 1 {
        return ranges.into_iter().map(run_range).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(ranges.len(), || None);
    {
        let writer = SlotWriter(slots.as_mut_ptr());
        let task = |chunk: usize| {
            let result = run_range(ranges[chunk].clone());
            // SAFETY: see `SlotWriter`; `chunk < ranges.len()`.
            unsafe { *writer.slot(chunk) = Some(result) };
        };
        pool.run(ranges.len(), &task);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("job latch opened with a chunk result missing"))
        .collect()
}
