//! In-repo stand-in for `rand_chacha`: a `ChaCha8Rng` built on the real
//! ChaCha stream cipher (RFC 8439 core, 8 rounds), implementing the
//! `RngCore`/`SeedableRng` traits of the workspace's `rand` stand-in.
//!
//! The keystream is genuine ChaCha8 keyed by the 32-byte seed with a
//! zero nonce, but output-word order is not guaranteed to match the
//! upstream `rand_chacha` crate bit for bit. All workspace consumers
//! seed explicitly and only need determinism.

use rand::{RngCore, SeedableRng};

/// ChaCha quarter round on four state words.
#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A deterministic rng over the ChaCha8 keystream.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit counter, zero nonce.
    input: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill needed".
    index: usize,
}

impl ChaCha8Rng {
    /// Run the 8-round block function and advance the counter.
    fn refill(&mut self) {
        let mut x = self.input;
        for _ in 0..4 {
            // column round
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // diagonal round
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, inp) in x.iter_mut().zip(self.input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = x;
        self.index = 0;
        // 64-bit block counter in words 12..14
        let (lo, carry) = self.input[12].overflowing_add(1);
        self.input[12] = lo;
        if carry {
            self.input[13] = self.input[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut input = [0u32; 16];
        // "expand 32-byte k"
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646e;
        input[2] = 0x7962_2d32;
        input[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            input[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng { input, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn rng_trait_methods_work() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let k = rng.gen_range(0..5usize);
        assert!(k < 5);
    }

    #[test]
    fn counter_spans_blocks() {
        // drawing > 16 words must cross a block boundary without repeats
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let words: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        let first_block = &words[..16];
        let second_block = &words[16..32];
        assert_ne!(first_block, second_block);
    }
}
