//! In-repo stand-in for `criterion`: the benchmark-harness API surface
//! this workspace's `benches/` use (`Criterion::benchmark_group`,
//! `sample_size`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`).
//!
//! Measurement is deliberately simple — a short warm-up, then
//! `sample_size` timed samples whose mean/min are printed per benchmark
//! — with none of the real crate's statistics, outlier analysis, or
//! HTML reports. Good enough to compare algorithm variants by eye and
//! to keep `cargo bench` compiling offline.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        eprintln!("group {name}");
        BenchmarkGroup { samples: 20 }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.samples = n.max(1);
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
        -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { per_sample: Vec::with_capacity(self.samples) };
        // warm-up pass, then timed samples
        routine(&mut bencher, input);
        bencher.per_sample.clear();
        for _ in 0..self.samples {
            routine(&mut bencher, input);
        }
        let taken = bencher.per_sample;
        if taken.is_empty() {
            eprintln!("  {id}: no samples recorded");
        } else {
            let total: Duration = taken.iter().sum();
            let mean = total / taken.len() as u32;
            let min = taken.iter().min().copied().unwrap_or_default();
            eprintln!(
                "  {id}: mean {:.3} ms, min {:.3} ms ({} samples)",
                mean.as_secs_f64() * 1e3,
                min.as_secs_f64() * 1e3,
                taken.len(),
            );
        }
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark: function name plus parameter value.
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into an id.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> BenchmarkId {
        BenchmarkId { name: name.into(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Times one routine; each `iter` call contributes one sample.
pub struct Bencher {
    per_sample: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once and record the sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.per_sample.push(start.elapsed());
    }
}

/// Bundle benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn group_macro_and_bencher_run() {
        benches();
    }

    #[test]
    fn benchmark_id_formats_name_and_param() {
        let id = BenchmarkId::new("brute_force", 4000);
        assert_eq!(id.to_string(), "brute_force/4000");
    }
}
