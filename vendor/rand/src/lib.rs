//! In-repo stand-in for `rand` 0.8: the traits and methods this
//! workspace actually uses (`RngCore`, `Rng::gen`/`gen_range`,
//! `SeedableRng::seed_from_u64`, `seq::SliceRandom::choose`/`shuffle`).
//!
//! Functionally equivalent to the real crate for these call sites;
//! generated streams are *not* guaranteed to match upstream rand bit
//! for bit. Every consumer in this workspace seeds explicitly, so the
//! only requirement is determinism, which this implementation provides.

/// Low-level source of random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the uniform / standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 random mantissa bits -> uniform in [0, 1)
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // modulo bias is < 2^-64 for every span used here
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, fair coin for `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a fixed-width seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 to fill the seed.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers (`choose`, `shuffle`).
pub mod seq {
    use super::Rng;

    /// Random selection / permutation on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// Minimal deterministic rng for testing the trait machinery.
    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SplitMix(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix(3);
        for _ in 0..1000 {
            let a = rng.gen_range(0..10usize);
            assert!(a < 10);
            let b = rng.gen_range(1..=4u32);
            assert!((1..=4).contains(&b));
            let c = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&c));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left slice untouched");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SplitMix(5);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x / 10 - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
