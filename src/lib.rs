//! GraphNER — corpus-level similarities and graph propagation for
//! named entity recognition.
//!
//! A from-scratch Rust reproduction of *GraphNER* (Sheikhshab et al.),
//! a transductive graph-based semi-supervised extension of CRF
//! gene-mention taggers, together with every substrate it depends on:
//! a linear-chain CRF, the BANNER and BANNER-ChemDNER base taggers,
//! Brown clustering and skip-gram embeddings, the 3-gram similarity
//! graph with label propagation, a bi-LSTM-CRF neural baseline,
//! synthetic BC2GM/AML corpus generators, and the BioCreative II
//! evaluation tooling (exact-match scorer, sigf significance testing,
//! UpSet error analysis).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`text`] — tokens, BIO tags, sentences, corpora, BC2GM format;
//! * [`crf`] — the chain CRF (orders 1 and 2) with L-BFGS training;
//! * [`embed`] — Brown clustering, SGNS embeddings, k-means;
//! * [`banner`] — the BANNER / BANNER-ChemDNER taggers;
//! * [`graph`] — PMI vectors, cosine k-NN, graph propagation;
//! * [`neural`] — the bi-LSTM-CRF baseline;
//! * [`corpusgen`] — seeded synthetic biomedical corpora;
//! * [`eval`] — BC2 scoring, sigf, chi-square, UpSet;
//! * [`core`] — GraphNER itself (Algorithm 1 of the paper);
//! * [`obs`] — zero-dependency spans, metrics, and logging
//!   (`GRAPHNER_LOG=off|summary|debug`).
//!
//! See `examples/quickstart.rs` for a five-minute tour and the
//! `graphner-bench` crate for the binaries regenerating every table and
//! figure of the paper.

pub use graphner_banner as banner;
pub use graphner_core as core;
pub use graphner_corpusgen as corpusgen;
pub use graphner_crf as crf;
pub use graphner_embed as embed;
pub use graphner_eval as eval;
pub use graphner_graph as graph;
pub use graphner_neural as neural;
pub use graphner_obs as obs;
pub use graphner_text as text;
