//! GraphNER — corpus-level similarities and graph propagation for
//! named entity recognition.
//!
//! A from-scratch Rust reproduction of *GraphNER* (Sheikhshab et al.),
//! a transductive graph-based semi-supervised extension of CRF
//! gene-mention taggers, together with every substrate it depends on:
//! a linear-chain CRF, the BANNER and BANNER-ChemDNER base taggers,
//! Brown clustering and skip-gram embeddings, the 3-gram similarity
//! graph with label propagation, a bi-LSTM-CRF neural baseline,
//! synthetic BC2GM/AML corpus generators, and the BioCreative II
//! evaluation tooling (exact-match scorer, sigf significance testing,
//! UpSet error analysis).
//!
//! The [`prelude`] re-exports the ~15 items of the end-to-end
//! workflow (`use graphner::prelude::*;` is the recommended import for
//! applications); this umbrella crate also re-exports the workspace
//! members wholesale:
//!
//! * [`text`] — tokens, BIO tags, sentences, corpora, BC2GM format;
//! * [`crf`] — the chain CRF (orders 1 and 2) with L-BFGS training;
//! * [`embed`] — Brown clustering, SGNS embeddings, k-means;
//! * [`banner`] — the BANNER / BANNER-ChemDNER taggers;
//! * [`graph`] — PMI vectors, cosine k-NN, graph propagation;
//! * [`neural`] — the bi-LSTM-CRF baseline;
//! * [`corpusgen`] — seeded synthetic biomedical corpora;
//! * [`eval`] — BC2 scoring, sigf, chi-square, UpSet;
//! * [`core`] — GraphNER itself (Algorithm 1 of the paper);
//! * [`serve`] — the online tagging service (request batching,
//!   backpressure, `graphner-serve` + `loadgen` binaries);
//! * [`obs`] — zero-dependency spans, metrics, and logging
//!   (`GRAPHNER_LOG=off|summary|debug`).
//!
//! See `examples/quickstart.rs` for a five-minute tour and the
//! `graphner-bench` crate for the binaries regenerating every table and
//! figure of the paper.

pub mod prelude {
    //! Everything a user needs end-to-end, in one import.
    //!
    //! `use graphner::prelude::*;` brings in the types of the whole
    //! workflow — build a [`Corpus`] of [`Sentence`]s (or [`generate`]
    //! a synthetic one from a [`CorpusProfile`]), configure the base
    //! CRF with [`NerConfig`] and GraphNER with
    //! [`GraphNerConfig::builder`], train a [`GraphNer`], test it
    //! transductively (directly or through a cached [`TestSession`]),
    //! freeze a serving-style [`GraphTagger`], persist with
    //! [`save_model`]/[`load_model`], and score any [`Tagger`] with
    //! [`evaluate_tagger`]. Everything else stays reachable through
    //! the per-crate modules (`graphner::text`, `graphner::eval`, …).

    pub use graphner_banner::NerConfig;
    pub use graphner_core::{
        annotations_from_predictions, load_model, save_model, ConfigError, GraphNer,
        GraphNerConfig, GraphNerConfigBuilder, GraphTagger, ServeConfig, ShardSize, SweepSchedule,
        TestOutput, TestSession,
    };
    pub use graphner_corpusgen::{generate, CorpusProfile};
    pub use graphner_crf::TrainConfig;
    pub use graphner_eval::{evaluate, evaluate_tagger, Evaluation};
    pub use graphner_serve::{render_tags, start as start_server, ServerHandle};
    pub use graphner_text::sentence::{mentions_to_tags, tags_to_mentions};
    pub use graphner_text::{tokenize, BioTag, Corpus, Mention, Sentence, TagError, Tagger};
}

pub use graphner_banner as banner;
pub use graphner_core as core;
pub use graphner_corpusgen as corpusgen;
pub use graphner_crf as crf;
pub use graphner_embed as embed;
pub use graphner_eval as eval;
pub use graphner_graph as graph;
pub use graphner_neural as neural;
pub use graphner_obs as obs;
pub use graphner_serve as serve;
pub use graphner_text as text;
